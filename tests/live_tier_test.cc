// Unit tests for the live ingestion tier: WAL round-trip and torn-tail
// semantics, LiveIndex stream invariants and sealing policy inputs, and
// LiveTier end-to-end behaviour (tiered queries, clean reopen, corrupt
// journals). Crash-point sweeps live in crash_recovery_test.cc; the
// live-vs-batch equivalence in backend_differential_test.cc.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datagen/query_gen.h"
#include "datagen/random_dataset.h"
#include "live/live_index.h"
#include "live/live_tier.h"
#include "live/wal.h"
#include "storage/fault_backend.h"
#include "storage/file_backend.h"
#include "storage/page_backend.h"
#include "storage/page_codec.h"

namespace stindex {
namespace {

Rect2D UnitRect(double lo, double hi) { return Rect2D(lo, lo, hi, hi); }

std::vector<WalRecord> SampleRecords(size_t count) {
  std::vector<WalRecord> records;
  for (size_t i = 0; i < count; ++i) {
    const ObjectId object = static_cast<ObjectId>(i % 7);
    switch (i % 3) {
      case 0:
        records.push_back(WalRecord::Observe(
            object, static_cast<Time>(i),
            UnitRect(0.01 * static_cast<double>(i % 50), 0.6)));
        break;
      case 1:
        records.push_back(WalRecord::End(object, static_cast<Time>(i)));
        break;
      default:
        records.push_back(WalRecord::Seal(object, static_cast<Time>(i),
                                          static_cast<uint32_t>(i % 5 + 1)));
        break;
    }
  }
  return records;
}

Result<std::vector<WalRecord>> Replay(const PageBackend& backend,
                                      WalReplayStats* stats,
                                      uint64_t start_seq = 1) {
  std::vector<WalRecord> records;
  WalReplayOptions options;
  options.start_seq = start_seq;
  Result<WalReplayStats> result =
      ReplayWal(backend, options, [&records](const WalRecord& record) {
        records.push_back(record);
        return Status::OK();
      });
  if (!result.ok()) return result.status();
  *stats = result.value();
  return records;
}

TEST(WalTest, RoundTripAcrossPages) {
  MemoryPageBackend backend;
  WalSlotAllocator slots;
  WalWriter writer(&backend, &slots, 1);
  const std::vector<WalRecord> records = SampleRecords(300);
  for (const WalRecord& record : records) {
    ASSERT_TRUE(writer.Append(record).ok());
  }
  ASSERT_TRUE(writer.Commit().ok());
  EXPECT_GE(writer.pages_written(), 2u);  // 300 records span pages

  WalReplayStats stats;
  Result<std::vector<WalRecord>> replayed = Replay(backend, &stats);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(replayed.value(), records);
  EXPECT_FALSE(stats.torn_tail);
  EXPECT_EQ(stats.pages, writer.pages_written());
  EXPECT_EQ(stats.next_seq, writer.next_seq());
  EXPECT_EQ(stats.tail.size(), writer.tail_pages());
}

TEST(WalTest, EmptyCommitIsNoOp) {
  MemoryPageBackend backend;
  WalSlotAllocator slots;
  WalWriter writer(&backend, &slots, 1);
  ASSERT_TRUE(writer.Commit().ok());
  EXPECT_EQ(writer.pages_written(), 0u);
  EXPECT_EQ(writer.commits(), 0u);
}

TEST(WalTest, TornTailIsCleanEndOfLog) {
  MemoryPageBackend backend;
  WalSlotAllocator slots;
  WalWriter writer(&backend, &slots, 1);
  const std::vector<WalRecord> records = SampleRecords(200);
  for (const WalRecord& record : records) {
    ASSERT_TRUE(writer.Append(record).ok());
  }
  ASSERT_TRUE(writer.Commit().ok());

  // A half-written page at the end of the log: allocated but failing its
  // checksum, as a crash mid-append leaves behind.
  uint8_t garbage[kPageSize];
  std::memset(garbage, 0xAB, sizeof(garbage));
  const PageId torn_slot = static_cast<PageId>(backend.SlotCount());
  ASSERT_TRUE(backend.Write(torn_slot, garbage).ok());

  WalReplayStats stats;
  Result<std::vector<WalRecord>> replayed = Replay(backend, &stats);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(replayed.value(), records);
  EXPECT_TRUE(stats.torn_tail);
  EXPECT_EQ(stats.next_seq, writer.next_seq());
  EXPECT_EQ(stats.garbage, std::vector<PageId>{torn_slot});

  // Recovery frees the debris; a continuing writer reuses the slot and
  // the log is whole again.
  for (PageId slot : stats.garbage) {
    ASSERT_TRUE(backend.Free(slot).ok());
  }
  WalSlotAllocator rebuilt(backend);
  WalWriter resumed(&backend, &rebuilt, stats.next_seq, stats.tail);
  ASSERT_TRUE(resumed.Append(WalRecord::End(99, 500)).ok());
  ASSERT_TRUE(resumed.Commit().ok());
  WalReplayStats healed;
  Result<std::vector<WalRecord>> full = Replay(backend, &healed);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_FALSE(healed.torn_tail);
  ASSERT_EQ(full.value().size(), records.size() + 1);
  EXPECT_EQ(full.value().back(), WalRecord::End(99, 500));
}

TEST(WalTest, InteriorCorruptionIsAnError) {
  MemoryPageBackend backend;
  WalSlotAllocator slots;
  WalWriter writer(&backend, &slots, 1);
  for (const WalRecord& record : SampleRecords(600)) {
    ASSERT_TRUE(writer.Append(record).ok());
  }
  ASSERT_TRUE(writer.Commit().ok());
  ASSERT_GE(writer.pages_written(), 3u);

  // Overwriting an interior page with garbage erases its sequence: the
  // run start_seq, start_seq+1, ... has a hole, which replay must refuse
  // to paper over.
  uint8_t garbage[kPageSize];
  std::memset(garbage, 0xCD, sizeof(garbage));
  ASSERT_TRUE(backend.Write(kWalFirstDataSlot + 1, garbage).ok());

  WalReplayStats stats;
  Result<std::vector<WalRecord>> replayed = Replay(backend, &stats);
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kInvalidArgument);
}

TEST(WalTest, ReplayRejectsInteriorGap) {
  MemoryPageBackend backend;
  WalSlotAllocator slots;
  WalWriter writer(&backend, &slots, 1);
  for (const WalRecord& record : SampleRecords(600)) {
    ASSERT_TRUE(writer.Append(record).ok());
  }
  ASSERT_TRUE(writer.Commit().ok());
  ASSERT_GE(writer.pages_written(), 3u);

  // A freed interior page (e.g. a botched truncation of the wrong range)
  // must be a loud error, not a silently shortened log.
  ASSERT_TRUE(backend.Free(kWalFirstDataSlot + 1).ok());
  WalReplayStats stats;
  Result<std::vector<WalRecord>> replayed = Replay(backend, &stats);
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(replayed.status().message().find("lost a committed page"),
            std::string::npos)
      << replayed.status().ToString();
}

TEST(WalTest, TruncateBeforeFreesAbsorbedPrefixAndRecyclesSlots) {
  MemoryPageBackend backend;
  WalSlotAllocator slots;
  WalWriter writer(&backend, &slots, 1);
  const std::vector<WalRecord> records = SampleRecords(500);
  for (const WalRecord& record : records) {
    ASSERT_TRUE(writer.Append(record).ok());
  }
  ASSERT_TRUE(writer.Commit().ok());
  ASSERT_GE(writer.tail_pages(), 3u);
  const size_t high_water = backend.SlotCount();

  // Truncate everything but the last flushed page, as a checkpoint whose
  // wal_start_seq falls there would.
  const uint64_t cut = writer.next_seq() - 1;
  size_t freed = 0;
  ASSERT_TRUE(writer.TruncateBefore(cut, &freed).ok());
  EXPECT_GT(freed, 0u);
  EXPECT_EQ(writer.tail_pages(), 1u);
  EXPECT_EQ(backend.LivePageCount(), 1u);

  // Replay from the cut sees exactly the surviving page's records.
  WalReplayStats stats;
  Result<std::vector<WalRecord>> tail = Replay(backend, &stats, cut);
  ASSERT_TRUE(tail.ok()) << tail.status().ToString();
  EXPECT_EQ(stats.pages, 1u);
  EXPECT_EQ(stats.next_seq, writer.next_seq());
  ASSERT_LE(tail.value().size(), records.size());
  EXPECT_TRUE(std::equal(tail.value().begin(), tail.value().end(),
                         records.end() - static_cast<long>(tail.value().size())));

  // Freed slots are recycled lowest-first: continuing to append does not
  // grow the file past its old high-water mark.
  for (const WalRecord& record : SampleRecords(400)) {
    ASSERT_TRUE(writer.Append(record).ok());
  }
  ASSERT_TRUE(writer.Commit().ok());
  EXPECT_LE(backend.SlotCount(), high_water);
}

TEST(LiveIndexTest, EnforcesStreamInvariants) {
  LiveIndex index(LiveIndexOptions{});
  bool applied = false;
  ASSERT_TRUE(index.Observe(1, 10, UnitRect(0.1, 0.2), &applied).ok());
  EXPECT_TRUE(applied);

  // Duplicate (the re-ingested tail after recovery): skipped, not applied.
  ASSERT_TRUE(index.Observe(1, 10, UnitRect(0.1, 0.2), &applied).ok());
  EXPECT_FALSE(applied);

  // A gap in the object's instants.
  EXPECT_FALSE(index.Observe(1, 12, UnitRect(0.1, 0.2), &applied).ok());

  // Global time regression: another object cannot start in the past.
  EXPECT_FALSE(index.Observe(2, 9, UnitRect(0.1, 0.2), &applied).ok());

  // End must follow the last instant...
  EXPECT_FALSE(index.End(1, 13, &applied).ok());
  ASSERT_TRUE(index.End(1, 11, &applied).ok());
  EXPECT_TRUE(applied);
  // ... is idempotent ...
  ASSERT_TRUE(index.End(1, 11, &applied).ok());
  EXPECT_FALSE(applied);
  // ... and is final: an ended object never moves again.
  EXPECT_FALSE(index.Observe(1, 11, UnitRect(0.1, 0.2), &applied).ok());
  // Ending an object never observed is an error.
  EXPECT_FALSE(index.End(5, 3, &applied).ok());
}

TEST(LiveIndexTest, SealingPolicyInputs) {
  LiveIndexOptions options;
  options.capacity = 3;
  options.buffer = 4;
  LiveIndex index(options);
  bool applied = false;
  ASSERT_TRUE(index.Observe(1, 0, UnitRect(0.1, 0.2), &applied).ok());
  ASSERT_TRUE(index.Observe(1, 1, UnitRect(0.1, 0.2), &applied).ok());
  EXPECT_FALSE(index.OverThreshold(1));
  ASSERT_TRUE(index.Observe(1, 2, UnitRect(0.1, 0.2), &applied).ok());
  EXPECT_TRUE(index.OverThreshold(1));
  EXPECT_EQ(index.RipeForCatchUp(), std::vector<ObjectId>{1});

  ASSERT_TRUE(index.Observe(2, 2, UnitRect(0.3, 0.4), &applied).ok());
  ASSERT_TRUE(index.Observe(2, 3, UnitRect(0.3, 0.4), &applied).ok());
  EXPECT_TRUE(index.OverBudget());  // 5 instants > budget of 4
  EXPECT_EQ(index.BudgetVictim(), 1u);  // oldest first instant

  Result<LiveIndex::SealedChunk> chunk = index.Seal(1);
  ASSERT_TRUE(chunk.ok());
  EXPECT_EQ(chunk.value().start, 0);
  EXPECT_EQ(chunk.value().rects.size(), 3u);
  EXPECT_FALSE(index.OverBudget());
  EXPECT_EQ(index.BudgetVictim(), 2u);
  EXPECT_EQ(index.buffered_instants(), 2u);
  EXPECT_EQ(index.Watermark(), 2);  // object 2's buffer opened at t=2

  // Sealing an empty buffer is an error.
  EXPECT_FALSE(index.Seal(1).ok());
}

TEST(LiveIndexTest, DurationRipensAgainstGlobalTime) {
  LiveIndexOptions options;
  options.capacity = 0;
  options.duration = 5;
  LiveIndex index(options);
  bool applied = false;
  ASSERT_TRUE(index.Observe(1, 0, UnitRect(0.1, 0.2), &applied).ok());
  ASSERT_TRUE(index.End(1, 1, &applied).ok());  // ended, buffer kept
  EXPECT_EQ(index.RipeForCatchUp(), std::vector<ObjectId>{1});

  // Another object advancing the clock ripens object 2's buffer by
  // duration even though object 2 itself only has one instant.
  ASSERT_TRUE(index.Observe(2, 3, UnitRect(0.3, 0.4), &applied).ok());
  EXPECT_FALSE(index.OverThreshold(2));
  ASSERT_TRUE(index.Observe(3, 7, UnitRect(0.5, 0.6), &applied).ok());
  EXPECT_TRUE(index.OverThreshold(2));
  EXPECT_EQ(index.RipeForCatchUp(), (std::vector<ObjectId>{1, 2}));
}

// Exact linear-scan reference: an object matches iff at some instant of
// the range (within its lifetime) its rectangle intersects the area.
// Migrated objects are approximated by segment MBRs (the paper's
// candidate semantics), so the tier may report a superset of this — but
// never miss one of these.
std::vector<ObjectId> ScanObjects(const std::vector<Trajectory>& objects,
                                  const STQuery& query) {
  std::vector<ObjectId> hits;
  for (const Trajectory& object : objects) {
    const TimeInterval life = object.Lifetime();
    const Time lo = std::max(query.range.start, life.start);
    const Time hi = std::min(query.range.end, life.end);
    for (Time t = lo; t < hi; ++t) {
      if (object.RectAt(t).Intersects(query.area)) {
        hits.push_back(object.id());
        break;
      }
    }
  }
  std::sort(hits.begin(), hits.end());
  return hits;
}

// Candidate-level reference: objects with a segment box intersecting the
// query. After Finish every observation lives in exactly one migrated
// segment, so the tiered query must equal this scan byte-for-byte.
std::vector<ObjectId> ScanSegments(const std::vector<SegmentRecord>& segments,
                                   const STQuery& query) {
  const STBox box(query.area, query.range);
  std::vector<ObjectId> hits;
  for (const SegmentRecord& segment : segments) {
    if (segment.box.Intersects(box)) hits.push_back(segment.object);
  }
  std::sort(hits.begin(), hits.end());
  hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
  return hits;
}

bool IsSubset(const std::vector<ObjectId>& inner,
              const std::vector<ObjectId>& outer) {
  return std::includes(outer.begin(), outer.end(), inner.begin(), inner.end());
}

std::vector<Trajectory> SmallDataset(uint64_t seed) {
  RandomDatasetConfig config;
  config.num_objects = 40;
  config.time_domain = 120;
  config.max_lifetime = 40;
  config.min_extent = 0.01;
  config.max_extent = 0.05;
  config.seed = seed;
  return GenerateRandomDataset(config);
}

std::vector<STQuery> SmallQueries(uint64_t seed) {
  QuerySetConfig config = MixedSnapshotSet();
  config.count = 24;
  config.time_domain = 120;
  config.min_extent = 0.02;
  config.max_extent = 0.2;
  config.seed = seed;
  std::vector<STQuery> queries = GenerateQuerySet(config);
  QuerySetConfig ranges = SmallRangeSet();
  ranges.count = 12;
  ranges.time_domain = 120;
  ranges.min_extent = 0.02;
  ranges.max_extent = 0.2;
  ranges.seed = seed + 1;
  for (const STQuery& query : GenerateQuerySet(ranges)) queries.push_back(query);
  return queries;
}

LiveTierOptions SmallTierOptions() {
  LiveTierOptions options;
  options.index.capacity = 10;
  options.index.buffer = 200;
  return options;
}

TEST(LiveTierTest, AnswersMatchLinearScanMidStreamAndAfterFinish) {
  const std::vector<Trajectory> objects = SmallDataset(7);
  const std::vector<LiveObservation> stream = MakeObservationStream(objects);
  const std::vector<STQuery> queries = SmallQueries(11);

  Result<std::unique_ptr<LiveTier>> tier = LiveTier::Open(
      SmallTierOptions(), std::make_unique<MemoryPageBackend>());
  ASSERT_TRUE(tier.ok()) << tier.status().ToString();

  // Mid-stream: every truly-matching absorbed object must be reported
  // (live buffers are exact; migrated chunks report at segment-MBR
  // granularity, so extras beyond the exact scan must come from segment
  // boxes).
  const size_t half = stream.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(tier.value()->Apply(stream[i]).ok());
  }
  const Time seen_until = stream[half - 1].time;
  for (const STQuery& query : queries) {
    if (query.range.end > seen_until) continue;  // touches unseen instants
    std::vector<ObjectId> got;
    tier.value()->IntervalQuery(query.area, query.range, &got);
    const std::vector<ObjectId> exact = ScanObjects(objects, query);
    EXPECT_TRUE(IsSubset(exact, got)) << "false negative mid-stream";
    std::vector<ObjectId> bound =
        ScanSegments(tier.value()->migrated_segments(), query);
    bound.insert(bound.end(), exact.begin(), exact.end());
    std::sort(bound.begin(), bound.end());
    bound.erase(std::unique(bound.begin(), bound.end()), bound.end());
    EXPECT_TRUE(IsSubset(got, bound)) << "unexplainable candidate";
  }

  for (size_t i = half; i < stream.size(); ++i) {
    ASSERT_TRUE(tier.value()->Apply(stream[i]).ok());
  }
  ASSERT_TRUE(tier.value()->Finish().ok());
  EXPECT_EQ(tier.value()->live_objects(), 0u);
  EXPECT_EQ(tier.value()->pending_events(), 0u);
  EXPECT_GT(tier.value()->migrated_segments().size(), objects.size() / 2);

  size_t total_hits = 0;
  for (const STQuery& query : queries) {
    std::vector<ObjectId> got;
    if (query.IsSnapshot()) {
      tier.value()->SnapshotQuery(query.area, query.range.start, &got);
    } else {
      tier.value()->IntervalQuery(query.area, query.range, &got);
    }
    EXPECT_EQ(got, ScanSegments(tier.value()->migrated_segments(), query));
    EXPECT_TRUE(IsSubset(ScanObjects(objects, query), got))
        << "false negative after Finish";
    total_hits += got.size();
  }
  EXPECT_GT(total_hits, 0u);

  // Finish froze the tier.
  EXPECT_EQ(tier.value()->Observe(999, 500, UnitRect(0.1, 0.2)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(LiveTierTest, DeletePendingRecordsDoNotLeakIntoLaterRanges) {
  LiveTierOptions options;
  options.index.capacity = 2;
  Result<std::unique_ptr<LiveTier>> tier =
      LiveTier::Open(options, std::make_unique<MemoryPageBackend>());
  ASSERT_TRUE(tier.ok());
  ASSERT_TRUE(tier.value()->Observe(1, 0, UnitRect(0.1, 0.2)).ok());
  ASSERT_TRUE(tier.value()->Observe(1, 1, UnitRect(0.1, 0.2)).ok());

  // The chunk [0, 2) sealed at capacity; its delete event (t=2) is still
  // queued, so inside the tree the record looks alive forever.
  std::vector<ObjectId> got;
  tier.value()->IntervalQuery(UnitRect(0.0, 1.0), TimeInterval(0, 2), &got);
  EXPECT_EQ(got, std::vector<ObjectId>{1});
  tier.value()->IntervalQuery(UnitRect(0.0, 1.0), TimeInterval(5, 9), &got);
  EXPECT_TRUE(got.empty());
}

TEST(LiveTierTest, CleanReopenContinuesAndReingestIsIdempotent) {
  const std::vector<Trajectory> objects = SmallDataset(13);
  const std::vector<LiveObservation> stream = MakeObservationStream(objects);
  const std::vector<STQuery> queries = SmallQueries(17);
  const std::string path = ::testing::TempDir() + "/live_reopen.stpages";

  const size_t half = stream.size() / 2;
  {
    Result<std::unique_ptr<FilePageBackend>> wal = FilePageBackend::Create(path);
    ASSERT_TRUE(wal.ok());
    Result<std::unique_ptr<LiveTier>> tier =
        LiveTier::Open(SmallTierOptions(), std::move(wal).value());
    ASSERT_TRUE(tier.ok());
    for (size_t i = 0; i < half; ++i) {
      ASSERT_TRUE(tier.value()->Apply(stream[i]).ok());
    }
    ASSERT_TRUE(tier.value()->Commit().ok());
  }

  Result<std::unique_ptr<FilePageBackend>> wal = FilePageBackend::Open(path);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  Result<std::unique_ptr<LiveTier>> tier =
      LiveTier::Open(SmallTierOptions(), std::move(wal).value());
  ASSERT_TRUE(tier.ok()) << tier.status().ToString();
  EXPECT_GT(tier.value()->recovered().records, 0u);

  // Re-ingest the whole stream: the absorbed half is skipped, the rest
  // applied.
  for (const LiveObservation& update : stream) {
    ASSERT_TRUE(tier.value()->Apply(update).ok());
  }
  ASSERT_TRUE(tier.value()->Finish().ok());
  for (const STQuery& query : queries) {
    std::vector<ObjectId> got;
    tier.value()->IntervalQuery(query.area, query.range, &got);
    EXPECT_EQ(got, ScanSegments(tier.value()->migrated_segments(), query));
    EXPECT_TRUE(IsSubset(ScanObjects(objects, query), got));
  }
}

TEST(LiveTierTest, RejectsSealRecordThatDoesNotMatchReplay) {
  auto backend = std::make_unique<MemoryPageBackend>();
  {
    WalSlotAllocator slots;
    WalWriter writer(backend.get(), &slots, 1);
    ASSERT_TRUE(writer.Append(WalRecord::Observe(7, 0, UnitRect(0.1, 0.2))).ok());
    ASSERT_TRUE(writer.Append(WalRecord::Observe(7, 1, UnitRect(0.1, 0.2))).ok());
    // Claims 9 segments; replaying the two observations yields 1.
    ASSERT_TRUE(writer.Append(WalRecord::Seal(7, 0, 9)).ok());
    ASSERT_TRUE(writer.Commit().ok());
  }
  Result<std::unique_ptr<LiveTier>> tier =
      LiveTier::Open(LiveTierOptions{}, std::move(backend));
  ASSERT_FALSE(tier.ok());
  EXPECT_EQ(tier.status().code(), StatusCode::kInvalidArgument);
}

TEST(LiveTierTest, UnjournaledUpdateIsInvisibleAfterWalFailure) {
  // The first WAL page write fails. Updates journal *before* they apply,
  // so the observation whose append hit the failure must never become
  // visible — a latched tier serves exactly the journaled prefix.
  FaultInjectingBackend::Faults faults;
  faults.fail_write_at = 1;
  auto fault = std::make_unique<FaultInjectingBackend>(
      std::make_unique<MemoryPageBackend>(), faults);
  LiveTierOptions options;
  options.index.capacity = 0;  // no sealing: every instant stays buffered
  options.index.duration = 0;
  options.index.buffer = 0;
  Result<std::unique_ptr<LiveTier>> tier =
      LiveTier::Open(options, std::move(fault));
  ASSERT_TRUE(tier.ok()) << tier.status().ToString();

  // Observations buffer into the open WAL page; the append that overflows
  // it triggers the (failing) page write.
  Time failed_at = -1;
  for (Time t = 0; t < 1000; ++t) {
    Status status = tier.value()->Observe(1, t, UnitRect(0.1, 0.2));
    if (!status.ok()) {
      EXPECT_EQ(status.code(), StatusCode::kIoError) << status.ToString();
      failed_at = t;
      break;
    }
  }
  ASSERT_GE(failed_at, 1) << "write fault never fired";

  // The failed instant is invisible...
  std::vector<ObjectId> got;
  tier.value()->SnapshotQuery(UnitRect(0.0, 1.0), failed_at, &got);
  EXPECT_TRUE(got.empty()) << "tier serves a never-journaled update";
  // ... while the journaled prefix still answers exactly.
  tier.value()->SnapshotQuery(UnitRect(0.0, 1.0), failed_at - 1, &got);
  EXPECT_EQ(got, std::vector<ObjectId>{1});
  EXPECT_EQ(tier.value()->buffered_instants(),
            static_cast<size_t>(failed_at));

  // And the tier is latched: no further updates, no commits.
  EXPECT_EQ(tier.value()->Observe(1, failed_at, UnitRect(0.1, 0.2)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(tier.value()->Commit().code(), StatusCode::kFailedPrecondition);
}

TEST(LiveTierTest, CheckpointTruncatesJournalAndReopensFromIt) {
  const std::vector<Trajectory> objects = SmallDataset(23);
  const std::vector<LiveObservation> stream = MakeObservationStream(objects);
  const std::vector<STQuery> queries = SmallQueries(29);
  const std::string path = ::testing::TempDir() + "/live_ckpt.stpages";

  // Reference: the same stream through an in-memory tier, no checkpoints.
  Result<std::unique_ptr<LiveTier>> reference = LiveTier::Open(
      SmallTierOptions(), std::make_unique<MemoryPageBackend>());
  ASSERT_TRUE(reference.ok());
  for (const LiveObservation& update : stream) {
    ASSERT_TRUE(reference.value()->Apply(update).ok());
  }
  ASSERT_TRUE(reference.value()->Finish().ok());

  const size_t half = stream.size() / 2;
  {
    Result<std::unique_ptr<FilePageBackend>> wal = FilePageBackend::Create(path);
    ASSERT_TRUE(wal.ok());
    Result<std::unique_ptr<LiveTier>> tier =
        LiveTier::Open(SmallTierOptions(), std::move(wal).value());
    ASSERT_TRUE(tier.ok());
    for (size_t i = 0; i < half; ++i) {
      ASSERT_TRUE(tier.value()->Apply(stream[i]).ok());
    }
    ASSERT_TRUE(tier.value()->Commit().ok());
    ASSERT_GT(tier.value()->wal_tail_pages(), 0u);
    ASSERT_TRUE(tier.value()->Checkpoint().ok());
    // The checkpoint absorbed the whole journal prefix.
    EXPECT_EQ(tier.value()->wal_tail_pages(), 0u);
    EXPECT_EQ(tier.value()->checkpoint_seq(), 1u);
  }

  Result<std::unique_ptr<FilePageBackend>> wal = FilePageBackend::Open(path);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  Result<std::unique_ptr<LiveTier>> tier =
      LiveTier::Open(SmallTierOptions(), std::move(wal).value());
  ASSERT_TRUE(tier.ok()) << tier.status().ToString();
  // Recovery loaded the checkpoint, not the log: nothing to replay.
  EXPECT_EQ(tier.value()->recovered().records, 0u);
  EXPECT_EQ(tier.value()->checkpoint_seq(), 1u);

  // Re-ingest the whole stream (absorbed half skipped) and finish: the
  // answers must match the uninterrupted reference exactly.
  for (const LiveObservation& update : stream) {
    ASSERT_TRUE(tier.value()->Apply(update).ok());
  }
  ASSERT_TRUE(tier.value()->Finish().ok());
  ASSERT_EQ(tier.value()->migrated_segments().size(),
            reference.value()->migrated_segments().size());
  for (const STQuery& query : queries) {
    std::vector<ObjectId> got;
    std::vector<ObjectId> want;
    tier.value()->IntervalQuery(query.area, query.range, &got);
    reference.value()->IntervalQuery(query.area, query.range, &want);
    EXPECT_EQ(got, want);
  }
  std::remove(path.c_str());
}

TEST(LiveTierTest, GroupCommitCoalescesConcurrentCommitters) {
  LiveTierOptions options = SmallTierOptions();
  options.group_commit = true;
  options.commit_interval_us = 2000;
  Result<std::unique_ptr<LiveTier>> tier =
      LiveTier::Open(options, std::make_unique<MemoryPageBackend>());
  ASSERT_TRUE(tier.ok());

  // Phase 1 — deterministic coalescing: all appends happen first, then
  // many threads Commit() the same log position. Whoever leads covers
  // everyone; the rest find their records already durable. Exactly one
  // fsync, however the threads interleave.
  for (Time t = 0; t < 5; ++t) {
    ASSERT_TRUE(tier.value()->Observe(1, t, UnitRect(0.1, 0.2)).ok());
  }
  {
    std::vector<std::thread> committers;
    std::atomic<int> failures{0};
    for (int w = 0; w < 8; ++w) {
      committers.emplace_back([&] {
        if (!tier.value()->Commit().ok()) ++failures;
      });
    }
    for (std::thread& worker : committers) worker.join();
    EXPECT_EQ(failures.load(), 0);
  }
  EXPECT_EQ(tier.value()->wal_commits(), 1u);

  // Phase 2 — writers interleaving appends and commits: every Commit()
  // that returns OK covers the caller's own appends regardless of which
  // thread led the batch. Cross-thread observations may race the shared
  // clock (kInvalidArgument) — that is stream validation, not durability,
  // and is tolerated here.
  constexpr int kThreads = 4;
  constexpr Time kTicks = 40;
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      const ObjectId object = static_cast<ObjectId>(100 + w);
      for (Time t = 5; t < kTicks; ++t) {
        Status status = tier.value()->Observe(
            object, t, UnitRect(0.1 + 0.01 * w, 0.2 + 0.01 * w));
        if (!status.ok() && status.code() != StatusCode::kInvalidArgument) {
          ++failures;
          return;
        }
        if (t % 5 == 4 && !tier.value()->Commit().ok()) {
          ++failures;
          return;
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(tier.value()->wal_commits(), 0u);
}

}  // namespace
}  // namespace stindex
