// Concurrent read paths: indexes are immutable during queries, and every
// querying thread uses its own BufferPool, so parallel queries must
// return exactly the single-threaded answers (TSan-clean by design: no
// shared mutable state on the read path).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "hrtree/hr_tree.h"
#include "pprtree/ppr_tree.h"
#include "rstar/rstar_tree.h"
#include "util/random.h"

namespace stindex {
namespace {

std::vector<SegmentRecord> RandomRecords(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<SegmentRecord> records;
  for (size_t i = 0; i < count; ++i) {
    SegmentRecord record;
    record.object = static_cast<ObjectId>(i);
    const Time life = rng.UniformInt(1, 40);
    const Time start = rng.UniformInt(0, 200 - life);
    const double x = rng.UniformDouble(0, 0.95);
    const double y = rng.UniformDouble(0, 0.95);
    record.box.rect = Rect2D(x, y, x + rng.UniformDouble(0.005, 0.05),
                             y + rng.UniformDouble(0.005, 0.05));
    record.box.interval = TimeInterval(start, start + life);
    records.push_back(record);
  }
  return records;
}

struct ThreadQuery {
  Rect2D area;
  Time t;
};

std::vector<ThreadQuery> MakeQueries(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<ThreadQuery> queries;
  for (size_t i = 0; i < count; ++i) {
    const double x = rng.UniformDouble(0, 0.8);
    const double y = rng.UniformDouble(0, 0.8);
    queries.push_back(ThreadQuery{
        Rect2D(x, y, x + rng.UniformDouble(0.02, 0.2),
               y + rng.UniformDouble(0.02, 0.2)),
        rng.UniformInt(0, 199)});
  }
  return queries;
}

TEST(ConcurrencyTest, ParallelPprSnapshotsMatchSerial) {
  const std::vector<SegmentRecord> records = RandomRecords(21, 800);
  std::unique_ptr<PprTree> tree = BuildPprTree(records);
  const std::vector<ThreadQuery> queries = MakeQueries(22, 200);

  // Serial reference.
  std::vector<std::vector<PprDataId>> expected(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    tree->SnapshotQuery(queries[q].area, queries[q].t, &expected[q]);
    std::sort(expected[q].begin(), expected[q].end());
  }

  constexpr int kThreads = 4;
  std::vector<std::vector<std::vector<PprDataId>>> got(
      kThreads, std::vector<std::vector<PprDataId>>(queries.size()));
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w]() {
      std::unique_ptr<BufferPool> buffer = tree->NewQueryBuffer();
      for (size_t q = 0; q < queries.size(); ++q) {
        tree->SnapshotQuery(queries[q].area, queries[q].t, buffer.get(),
                            &got[static_cast<size_t>(w)][q]);
        std::sort(got[static_cast<size_t>(w)][q].begin(),
                  got[static_cast<size_t>(w)][q].end());
        if (got[static_cast<size_t>(w)][q] != expected[q]) ++mismatches;
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrencyTest, ParallelIntervalQueriesAcrossStructures) {
  const std::vector<SegmentRecord> records = RandomRecords(23, 600);
  std::unique_ptr<PprTree> ppr = BuildPprTree(records);
  std::unique_ptr<HrTree> hr = BuildHrTree(records);

  const std::vector<ThreadQuery> queries = MakeQueries(24, 100);
  std::atomic<int> mismatches{0};
  auto worker = [&]() {
    std::unique_ptr<BufferPool> ppr_buffer = ppr->NewQueryBuffer();
    std::unique_ptr<BufferPool> hr_buffer = hr->NewQueryBuffer();
    std::vector<PprDataId> a;
    std::vector<HrDataId> b;
    for (const ThreadQuery& query : queries) {
      const TimeInterval range(query.t, std::min<Time>(200, query.t + 12));
      ppr->IntervalQuery(query.area, range, ppr_buffer.get(), &a);
      hr->IntervalQuery(query.area, range, hr_buffer.get(), &b);
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      if (a != b) ++mismatches;
    }
  };
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) workers.emplace_back(worker);
  for (std::thread& thread : workers) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrencyTest, ParallelRStarSearchesMatchSerial) {
  Rng rng(25);
  RStarTree tree;
  std::vector<Box3D> boxes;
  for (DataId i = 0; i < 1500; ++i) {
    const double x = rng.UniformDouble(0, 1);
    const double y = rng.UniformDouble(0, 1);
    const double t = rng.UniformDouble(0, 1);
    boxes.emplace_back(x, y, t, x + 0.02, y + 0.02, t + 0.02);
    tree.Insert(boxes.back(), i);
  }
  std::vector<Box3D> windows;
  for (int q = 0; q < 80; ++q) {
    const double x = rng.UniformDouble(0, 0.8);
    const double y = rng.UniformDouble(0, 0.8);
    const double t = rng.UniformDouble(0, 0.8);
    windows.emplace_back(x, y, t, x + 0.15, y + 0.15, t + 0.15);
  }
  std::vector<std::vector<DataId>> expected(windows.size());
  for (size_t q = 0; q < windows.size(); ++q) {
    tree.Search(windows[q], &expected[q]);
    std::sort(expected[q].begin(), expected[q].end());
  }
  std::atomic<int> mismatches{0};
  auto worker = [&]() {
    std::unique_ptr<BufferPool> buffer = tree.NewQueryBuffer();
    std::vector<DataId> results;
    for (size_t q = 0; q < windows.size(); ++q) {
      tree.Search(windows[q], buffer.get(), &results);
      std::sort(results.begin(), results.end());
      if (results != expected[q]) ++mismatches;
    }
  };
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) workers.emplace_back(worker);
  for (std::thread& thread : workers) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// N workers over ONE shared read-only PageStore, each owning a private
// BufferPool and issuing a worker-specific mix of range + snapshot
// queries generated from a deterministically derived sub-seed
// (Rng::DeriveSeed, never a shared Rng — sharing one generator across
// threads is both a race and a determinism bug). Results must match a
// serial oracle that replays every worker's stream, and the aggregated
// IoStats must be self-consistent.
TEST(ConcurrencyTest, SharedStorePrivateBuffersAggregateConsistently) {
  const std::vector<SegmentRecord> records = RandomRecords(27, 900);
  std::unique_ptr<PprTree> tree = BuildPprTree(records);

  constexpr int kWorkers = 6;
  constexpr size_t kQueriesPerWorker = 120;
  constexpr uint64_t kBaseSeed = 28;

  // Every worker replays this stream shape from its own derived seed.
  auto run_worker_stream = [&](uint64_t worker, BufferPool* buffer,
                               std::vector<std::vector<PprDataId>>* results) {
    Rng rng(Rng::DeriveSeed(kBaseSeed, worker));
    results->resize(kQueriesPerWorker);
    for (size_t q = 0; q < kQueriesPerWorker; ++q) {
      const double x = rng.UniformDouble(0, 0.8);
      const double y = rng.UniformDouble(0, 0.8);
      const Rect2D area(x, y, x + rng.UniformDouble(0.02, 0.2),
                        y + rng.UniformDouble(0.02, 0.2));
      const Time t = rng.UniformInt(0, 180);
      std::vector<PprDataId>& out = (*results)[q];
      if (rng.Bernoulli(0.5)) {
        tree->SnapshotQuery(area, t, buffer, &out);
      } else {
        tree->IntervalQuery(area, TimeInterval(t, t + 15), buffer, &out);
      }
      std::sort(out.begin(), out.end());
    }
  };

  std::vector<std::vector<std::vector<PprDataId>>> got(kWorkers);
  std::vector<IoStats> worker_stats(kWorkers);
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w]() {
      std::unique_ptr<BufferPool> buffer = tree->NewQueryBuffer();
      run_worker_stream(static_cast<uint64_t>(w), buffer.get(),
                        &got[static_cast<size_t>(w)]);
      worker_stats[static_cast<size_t>(w)] = buffer->stats();
    });
  }
  for (std::thread& worker : workers) worker.join();

  // Serial oracle: the same derived-seed streams, one worker at a time.
  IoStats aggregate;
  for (int w = 0; w < kWorkers; ++w) {
    std::unique_ptr<BufferPool> buffer = tree->NewQueryBuffer();
    std::vector<std::vector<PprDataId>> expected;
    run_worker_stream(static_cast<uint64_t>(w), buffer.get(), &expected);
    EXPECT_EQ(got[static_cast<size_t>(w)], expected) << "worker " << w;
    // A private pool's traffic depends only on its own query stream, so
    // the concurrent counters must equal the serial replay exactly.
    EXPECT_EQ(worker_stats[static_cast<size_t>(w)].accesses,
              buffer->stats().accesses)
        << "worker " << w;
    EXPECT_EQ(worker_stats[static_cast<size_t>(w)].misses,
              buffer->stats().misses)
        << "worker " << w;
    aggregate.accesses += worker_stats[static_cast<size_t>(w)].accesses;
    aggregate.misses += worker_stats[static_cast<size_t>(w)].misses;
  }

  // Aggregated stats are self-consistent: every miss was an access, some
  // accesses hit the cache, and work actually happened.
  EXPECT_GT(aggregate.accesses, 0u);
  EXPECT_GT(aggregate.misses, 0u);
  EXPECT_GE(aggregate.accesses, aggregate.misses);
  EXPECT_EQ(aggregate.Hits(), aggregate.accesses - aggregate.misses);
}

// Distinct workers must draw distinct query streams: DeriveSeed gives
// decorrelated sub-seeds, so two workers' first draws differ (the seed
// issue this suite regressed on was every worker sharing one Rng).
TEST(ConcurrencyTest, DerivedSubSeedsProduceDistinctStreams) {
  Rng a(Rng::DeriveSeed(42, 0));
  Rng b(Rng::DeriveSeed(42, 1));
  Rng base(42);
  EXPECT_NE(a.Next(), b.Next());
  // Stream 0 is not the parent stream either.
  Rng a2(Rng::DeriveSeed(42, 0));
  EXPECT_NE(a2.Next(), base.Next());
  // And the derivation is deterministic.
  EXPECT_EQ(Rng::DeriveSeed(42, 3), Rng::DeriveSeed(42, 3));
  EXPECT_NE(Rng::DeriveSeed(42, 3), Rng::DeriveSeed(43, 3));
}

TEST(ConcurrencyTest, PerBufferStatsAreIndependent) {
  const std::vector<SegmentRecord> records = RandomRecords(26, 400);
  std::unique_ptr<PprTree> tree = BuildPprTree(records);
  std::unique_ptr<BufferPool> a = tree->NewQueryBuffer();
  std::unique_ptr<BufferPool> b = tree->NewQueryBuffer(3);
  std::vector<PprDataId> results;
  tree->SnapshotQuery(Rect2D(0, 0, 1, 1), 100, a.get(), &results);
  EXPECT_GT(a->stats().accesses, 0u);
  EXPECT_EQ(b->stats().accesses, 0u);
  EXPECT_EQ(b->capacity(), 3u);
}

}  // namespace
}  // namespace stindex
