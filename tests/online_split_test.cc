#include <gtest/gtest.h>

#include <vector>

#include "core/dp_split.h"
#include "core/merge_split.h"
#include "core/online_split.h"
#include "util/random.h"

namespace stindex {
namespace {

std::vector<Rect2D> StationaryRects(int n) {
  return std::vector<Rect2D>(static_cast<size_t>(n),
                             Rect2D(0.4, 0.4, 0.45, 0.45));
}

TEST(OnlineSplitTest, StationaryObjectNeverSplits) {
  const SplitResult result = OnlineSplit(StationaryRects(100));
  EXPECT_TRUE(result.cuts.empty());
}

TEST(OnlineSplitTest, TeleportTriggersCut) {
  // Ten instants here, ten instants far away: one cut at the jump.
  std::vector<Rect2D> rects;
  for (int i = 0; i < 10; ++i) rects.emplace_back(0.0, 0.0, 0.05, 0.05);
  for (int i = 0; i < 10; ++i) rects.emplace_back(0.8, 0.8, 0.85, 0.85);
  const SplitResult result = OnlineSplit(rects);
  ASSERT_EQ(result.cuts.size(), 1u);
  EXPECT_EQ(result.cuts[0], 10);
  // Total volume equals the two tight pieces.
  EXPECT_NEAR(result.total_volume, 2 * (0.05 * 0.05 * 10), 1e-12);
}

TEST(OnlineSplitTest, CutsAreStableAndOrdered) {
  Rng rng(61);
  OnlineSplitter splitter;
  std::vector<Rect2D> rects;
  double x = 0.1;
  std::vector<int> observed_cut_counts;
  for (int i = 0; i < 200; ++i) {
    x += rng.UniformDouble(0.0, 0.01);
    rects.emplace_back(x, 0.2, x + 0.02, 0.22);
    const std::vector<int> before = splitter.cuts();
    splitter.Observe(rects.back());
    // Past cuts never change (streaming stability).
    ASSERT_GE(splitter.cuts().size(), before.size());
    for (size_t c = 0; c < before.size(); ++c) {
      EXPECT_EQ(splitter.cuts()[c], before[c]);
    }
  }
  const SplitResult result = splitter.Finish(rects);
  for (size_t c = 1; c < result.cuts.size(); ++c) {
    EXPECT_LT(result.cuts[c - 1], result.cuts[c]);
  }
  EXPECT_NEAR(result.total_volume, SplitVolume(rects, result.cuts), 1e-9);
}

TEST(OnlineSplitTest, RespectsBudget) {
  std::vector<Rect2D> rects;
  double x = 0.0;
  for (int i = 0; i < 300; ++i) {
    x += 0.003;
    rects.emplace_back(x, 0.0, x + 0.01, 0.01);
  }
  OnlineSplitter::Options options;
  options.max_splits = 3;
  options.waste_threshold = 1.5;
  const SplitResult result = OnlineSplit(rects, options);
  EXPECT_LE(result.NumSplits(), 3);
}

TEST(OnlineSplitTest, MinSegmentLengthRespected) {
  std::vector<Rect2D> rects;
  Rng rng(62);
  for (int i = 0; i < 120; ++i) {
    const double x = rng.UniformDouble(0, 0.9);  // wild jumps
    rects.emplace_back(x, x, x + 0.02, x + 0.02);
  }
  OnlineSplitter::Options options;
  options.min_segment_length = 5;
  options.waste_threshold = 1.1;
  const SplitResult result = OnlineSplit(rects, options);
  int previous = 0;
  for (int cut : result.cuts) {
    EXPECT_GE(cut - previous, 5);
    previous = cut;
  }
}

class OnlineVsOfflineTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OnlineVsOfflineTest, CompetitiveWithOfflineAtSameSplitCount) {
  Rng rng(GetParam());
  std::vector<Rect2D> rects;
  double x = rng.UniformDouble(0.1, 0.9);
  double y = rng.UniformDouble(0.1, 0.9);
  for (int i = 0; i < 150; ++i) {
    x += rng.UniformDouble(-0.02, 0.02);
    y += rng.UniformDouble(-0.02, 0.02);
    rects.emplace_back(x, y, x + 0.02, y + 0.02);
  }
  const SplitResult online = OnlineSplit(rects);
  const double unsplit = SplitVolume(rects, {});
  EXPECT_LE(online.total_volume, unsplit + 1e-12);
  if (online.NumSplits() > 0) {
    const SplitResult offline = DpSplit(rects, online.NumSplits());
    // Clairvoyant DP is a lower bound; the streaming heuristic should be
    // within a small constant factor of it with the same split count.
    EXPECT_GE(online.total_volume, offline.total_volume - 1e-9);
    EXPECT_LE(online.total_volume, 4.0 * offline.total_volume + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnlineVsOfflineTest,
                         ::testing::Values(71, 72, 73, 74, 75, 76, 77, 78));

TEST(OnlineSplitTest, ThresholdControlsAggressiveness) {
  Rng rng(63);
  std::vector<Rect2D> rects;
  double x = 0.1;
  for (int i = 0; i < 200; ++i) {
    x += rng.UniformDouble(0.0, 0.008);
    rects.emplace_back(x, 0.3, x + 0.02, 0.32);
  }
  OnlineSplitter::Options tight;
  tight.waste_threshold = 1.5;
  OnlineSplitter::Options loose;
  loose.waste_threshold = 10.0;
  const SplitResult aggressive = OnlineSplit(rects, tight);
  const SplitResult lazy = OnlineSplit(rects, loose);
  EXPECT_GT(aggressive.NumSplits(), lazy.NumSplits());
  EXPECT_LE(aggressive.total_volume, lazy.total_volume + 1e-9);
}

}  // namespace
}  // namespace stindex
