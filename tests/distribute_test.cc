#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "core/distribute.h"
#include "core/merge_split.h"
#include "core/volume_curve.h"
#include "util/random.h"

namespace stindex {
namespace {

VolumeCurve MakeCurve(std::vector<double> volumes) {
  VolumeCurve curve;
  curve.volume = std::move(volumes);
  return curve;
}

// Exhaustive optimum by enumerating all allocations (tiny instances).
double BruteForceDistribute(const std::vector<VolumeCurve>& curves,
                            int k_total) {
  const size_t n = curves.size();
  double best = std::numeric_limits<double>::infinity();
  std::vector<int> allocation(n, 0);
  while (true) {
    int used = 0;
    for (int a : allocation) used += a;
    if (used <= k_total) {
      double total = 0.0;
      for (size_t i = 0; i < n; ++i) total += curves[i].VolumeAt(allocation[i]);
      best = std::min(best, total);
    }
    // Increment the mixed-radix counter.
    size_t pos = 0;
    while (pos < n) {
      if (allocation[pos] < curves[pos].MaxSplits()) {
        ++allocation[pos];
        break;
      }
      allocation[pos] = 0;
      ++pos;
    }
    if (pos == n) break;
  }
  return best;
}

std::vector<VolumeCurve> RandomCurves(uint64_t seed, size_t n,
                                      int max_splits) {
  Rng rng(seed);
  std::vector<VolumeCurve> curves;
  for (size_t i = 0; i < n; ++i) {
    const int k = static_cast<int>(rng.UniformInt(1, max_splits));
    std::vector<double> volumes;
    double v = rng.UniformDouble(10.0, 100.0);
    volumes.push_back(v);
    for (int j = 0; j < k; ++j) {
      v -= rng.UniformDouble(0.0, v * 0.4);
      volumes.push_back(v);
    }
    curves.push_back(MakeCurve(std::move(volumes)));
  }
  return curves;
}

TEST(DistributeOptimalTest, ZeroBudgetKeepsEverythingUnsplit) {
  const std::vector<VolumeCurve> curves = RandomCurves(1, 5, 4);
  const Distribution dist = DistributeOptimal(curves, 0);
  EXPECT_EQ(dist.TotalSplits(), 0);
  EXPECT_NEAR(dist.total_volume, UnsplitVolume(curves), 1e-9);
}

TEST(DistributeOptimalTest, VolumeMatchesAllocation) {
  const std::vector<VolumeCurve> curves = RandomCurves(2, 20, 6);
  const Distribution dist = DistributeOptimal(curves, 15);
  double total = 0.0;
  for (size_t i = 0; i < curves.size(); ++i) {
    total += curves[i].VolumeAt(dist.splits[i]);
  }
  EXPECT_NEAR(total, dist.total_volume, 1e-9);
  EXPECT_LE(dist.TotalSplits(), 15);
}

class DistributeOptimalityTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int, int>> {};

TEST_P(DistributeOptimalityTest, MatchesBruteForce) {
  const auto [seed, n, k] = GetParam();
  const std::vector<VolumeCurve> curves =
      RandomCurves(seed, static_cast<size_t>(n), 3);
  const Distribution dist = DistributeOptimal(curves, k);
  const double brute = BruteForceDistribute(curves, k);
  EXPECT_NEAR(dist.total_volume, brute, 1e-9)
      << "seed=" << seed << " n=" << n << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    SmallInstances, DistributeOptimalityTest,
    ::testing::Combine(::testing::Values(3, 4, 5, 6),
                       ::testing::Values(3, 5), ::testing::Values(2, 4, 7)));

TEST(DistributeOptimalTest, SurplusBudgetFullySplitsEverything) {
  const std::vector<VolumeCurve> curves = RandomCurves(7, 6, 3);
  int64_t max_total = 0;
  double floor_volume = 0.0;
  for (const VolumeCurve& curve : curves) {
    max_total += curve.MaxSplits();
    floor_volume += curve.volume.back();
  }
  const Distribution dist = DistributeOptimal(curves, max_total + 100);
  EXPECT_NEAR(dist.total_volume, floor_volume, 1e-9);
  EXPECT_LE(dist.TotalSplits(), max_total);
}

TEST(DistributeGreedyTest, UsesBudgetOnLargestGains) {
  // Object 0: one split saves 9. Object 1: one split saves 1.
  const std::vector<VolumeCurve> curves = {MakeCurve({10.0, 1.0}),
                                           MakeCurve({10.0, 9.0})};
  const Distribution dist = DistributeGreedy(curves, 1);
  EXPECT_EQ(dist.splits, (std::vector<int>{1, 0}));
  EXPECT_NEAR(dist.total_volume, 11.0, 1e-12);
}

TEST(DistributeGreedyTest, VolumeMatchesAllocation) {
  const std::vector<VolumeCurve> curves = RandomCurves(8, 50, 8);
  const Distribution dist = DistributeGreedy(curves, 100);
  double total = 0.0;
  for (size_t i = 0; i < curves.size(); ++i) {
    total += curves[i].VolumeAt(dist.splits[i]);
  }
  EXPECT_NEAR(total, dist.total_volume, 1e-9);
}

TEST(DistributeGreedyTest, OptimalForMonotoneGains) {
  // With concave (monotone-gain) curves greedy is optimal.
  std::vector<VolumeCurve> curves;
  Rng rng(9);
  for (int i = 0; i < 8; ++i) {
    std::vector<double> volumes = {rng.UniformDouble(50, 100)};
    double gain = rng.UniformDouble(5, 20);
    for (int j = 0; j < 4; ++j) {
      volumes.push_back(volumes.back() - gain);
      gain *= rng.UniformDouble(0.3, 0.9);  // strictly decreasing gains
    }
    curves.push_back(MakeCurve(std::move(volumes)));
  }
  for (int k : {3, 7, 12}) {
    const double greedy = DistributeGreedy(curves, k).total_volume;
    const double optimal = DistributeOptimal(curves, k).total_volume;
    EXPECT_NEAR(greedy, optimal, 1e-9) << "k=" << k;
  }
}

TEST(DistributeLAGreedyTest, FixesNonMonotoneObject) {
  // The Figure 4 pathology: object 0 gains almost nothing from one split
  // but nearly everything from two. Greedy starves it; LAGreedy must not.
  const std::vector<VolumeCurve> curves = {
      MakeCurve({100.0, 99.5, 10.0}),  // non-monotone gains: 0.5 then 89.5
      MakeCurve({50.0, 45.0, 41.0}),   // steady gains: 5, 4
      MakeCurve({50.0, 44.0, 40.0}),   // steady gains: 6, 4
  };
  const Distribution greedy = DistributeGreedy(curves, 2);
  // Greedy spends its two splits on the steady objects.
  EXPECT_EQ(greedy.splits[0], 0);
  EXPECT_NEAR(greedy.total_volume, 100.0 + 45.0 + 44.0, 1e-12);

  const Distribution lagreedy = DistributeLAGreedy(curves, 2);
  // LAGreedy reassigns both splits to object 0: 10 + 50 + 50 = 110.
  EXPECT_EQ(lagreedy.splits, (std::vector<int>{2, 0, 0}));
  EXPECT_NEAR(lagreedy.total_volume, 110.0, 1e-12);

  const Distribution optimal = DistributeOptimal(curves, 2);
  EXPECT_NEAR(lagreedy.total_volume, optimal.total_volume, 1e-12);
}

TEST(DistributeLAGreedyTest, NeverWorseThanGreedy) {
  for (uint64_t seed : {21u, 22u, 23u, 24u, 25u}) {
    const std::vector<VolumeCurve> curves = RandomCurves(seed, 40, 10);
    for (int64_t k : {10, 40, 120}) {
      const Distribution greedy = DistributeGreedy(curves, k);
      const Distribution lagreedy = DistributeLAGreedy(curves, k);
      EXPECT_LE(lagreedy.total_volume, greedy.total_volume + 1e-9)
          << "seed=" << seed << " k=" << k;
      EXPECT_EQ(lagreedy.TotalSplits(), greedy.TotalSplits());
    }
  }
}

TEST(DistributeLAGreedyTest, NeverBeatsOptimal) {
  for (uint64_t seed : {31u, 32u, 33u}) {
    const std::vector<VolumeCurve> curves = RandomCurves(seed, 8, 3);
    for (int64_t k : {3, 6, 10}) {
      const Distribution lagreedy = DistributeLAGreedy(curves, k);
      const Distribution optimal = DistributeOptimal(curves, k);
      EXPECT_GE(lagreedy.total_volume, optimal.total_volume - 1e-9);
    }
  }
}

TEST(DistributeTest, HierarchyOnRealCurves) {
  // End-to-end over real per-object curves from random rectangles.
  Rng rng(77);
  std::vector<std::vector<Rect2D>> objects;
  for (int i = 0; i < 12; ++i) {
    std::vector<Rect2D> rects;
    double x = rng.UniformDouble(0, 1);
    const int n = static_cast<int>(rng.UniformInt(3, 15));
    for (int t = 0; t < n; ++t) {
      x += rng.UniformDouble(-0.05, 0.05);
      rects.emplace_back(x, 0.0, x + 0.01, 0.01);
    }
    objects.push_back(std::move(rects));
  }
  std::vector<VolumeCurve> curves;
  for (const auto& rects : objects) {
    VolumeCurve curve;
    curve.volume = MergeVolumeCurve(rects, 6);
    curves.push_back(std::move(curve));
  }
  const int64_t k = 8;
  const double optimal = DistributeOptimal(curves, k).total_volume;
  const double lagreedy = DistributeLAGreedy(curves, k).total_volume;
  const double greedy = DistributeGreedy(curves, k).total_volume;
  const double unsplit = UnsplitVolume(curves);
  EXPECT_LE(optimal, lagreedy + 1e-9);
  EXPECT_LE(lagreedy, greedy + 1e-9);
  EXPECT_LT(greedy, unsplit);
}

TEST(DistributeTest, EmptyCollection) {
  const std::vector<VolumeCurve> curves;
  EXPECT_EQ(DistributeOptimal(curves, 10).TotalSplits(), 0);
  EXPECT_EQ(DistributeGreedy(curves, 10).TotalSplits(), 0);
  EXPECT_EQ(DistributeLAGreedy(curves, 10).TotalSplits(), 0);
}

}  // namespace
}  // namespace stindex
