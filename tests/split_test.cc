#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "core/dp_split.h"
#include "core/merge_split.h"
#include "core/piecewise_split.h"
#include "core/segment.h"
#include "core/volume_curve.h"
#include "trajectory/trajectory.h"
#include "util/random.h"

namespace stindex {
namespace {

std::vector<Rect2D> RandomRects(uint64_t seed, int n, double step = 0.05) {
  Rng rng(seed);
  std::vector<Rect2D> rects;
  double x = rng.UniformDouble(0, 1);
  double y = rng.UniformDouble(0, 1);
  for (int i = 0; i < n; ++i) {
    x += rng.UniformDouble(-step, step);
    y += rng.UniformDouble(-step, step);
    const double w = rng.UniformDouble(0.01, 0.05);
    const double h = rng.UniformDouble(0.01, 0.05);
    rects.emplace_back(x, y, x + w, y + h);
  }
  return rects;
}

// Exhaustive optimum over all ways to place k cuts among n-1 positions.
double BruteForceBestVolume(const std::vector<Rect2D>& rects, int k) {
  const int n = static_cast<int>(rects.size());
  double best = std::numeric_limits<double>::infinity();
  std::vector<int> cuts(static_cast<size_t>(k));
  // Iterate over all k-combinations of {1, ..., n-1}.
  std::vector<int> indices(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) indices[static_cast<size_t>(i)] = i + 1;
  if (k == 0) return SplitVolume(rects, {});
  if (k > n - 1) return BruteForceBestVolume(rects, n - 1);
  while (true) {
    best = std::min(best, SplitVolume(rects, indices));
    // Next combination.
    int pos = k - 1;
    while (pos >= 0 &&
           indices[static_cast<size_t>(pos)] == n - 1 - (k - 1 - pos)) {
      --pos;
    }
    if (pos < 0) break;
    ++indices[static_cast<size_t>(pos)];
    for (int p = pos + 1; p < k; ++p) {
      indices[static_cast<size_t>(p)] = indices[static_cast<size_t>(p - 1)] + 1;
    }
  }
  return best;
}

TEST(ApplySplitsTest, NoCutsYieldsSingleBox) {
  const std::vector<Rect2D> rects = RandomRects(1, 10);
  const std::vector<SegmentRecord> records = ApplySplits(5, rects, 100, {});
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].object, 5u);
  EXPECT_EQ(records[0].box.interval, TimeInterval(100, 110));
  for (const Rect2D& rect : rects) {
    EXPECT_TRUE(records[0].box.rect.Contains(rect));
  }
}

TEST(ApplySplitsTest, CutsProduceConsecutiveIntervals) {
  const std::vector<Rect2D> rects = RandomRects(2, 10);
  const std::vector<SegmentRecord> records =
      ApplySplits(0, rects, 50, {3, 7});
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].box.interval, TimeInterval(50, 53));
  EXPECT_EQ(records[1].box.interval, TimeInterval(53, 57));
  EXPECT_EQ(records[2].box.interval, TimeInterval(57, 60));
  // Each segment covers its instants.
  for (int t = 0; t < 10; ++t) {
    const SegmentRecord& seg = records[t < 3 ? 0 : (t < 7 ? 1 : 2)];
    EXPECT_TRUE(seg.box.rect.Contains(rects[static_cast<size_t>(t)]));
  }
}

TEST(SplitVolumeTest, MatchesRecordVolumes) {
  const std::vector<Rect2D> rects = RandomRects(3, 20);
  const std::vector<int> cuts = {5, 11, 16};
  const std::vector<SegmentRecord> records = ApplySplits(0, rects, 0, cuts);
  double total = 0.0;
  for (const SegmentRecord& record : records) total += record.box.Volume();
  EXPECT_NEAR(SplitVolume(rects, cuts), total, 1e-12);
}

TEST(DpSplitTest, ZeroSplitsIsFullMbr) {
  const std::vector<Rect2D> rects = RandomRects(4, 15);
  const SplitResult result = DpSplit(rects, 0);
  EXPECT_TRUE(result.cuts.empty());
  EXPECT_NEAR(result.total_volume, SplitVolume(rects, {}), 1e-12);
}

TEST(DpSplitTest, ReportedVolumeMatchesCuts) {
  const std::vector<Rect2D> rects = RandomRects(5, 25);
  for (int k : {1, 2, 5, 10}) {
    const SplitResult result = DpSplit(rects, k);
    EXPECT_EQ(result.NumSplits(), k);
    EXPECT_NEAR(result.total_volume, SplitVolume(rects, result.cuts), 1e-9);
  }
}

TEST(DpSplitTest, SaturatesAtOneBoxPerInstant) {
  const std::vector<Rect2D> rects = RandomRects(6, 5);
  const SplitResult result = DpSplit(rects, 100);
  EXPECT_EQ(result.NumSplits(), 4);
  double singleton_volume = 0.0;
  for (const Rect2D& rect : rects) singleton_volume += rect.Area();
  EXPECT_NEAR(result.total_volume, singleton_volume, 1e-12);
}

TEST(DpSplitTest, ObviousSplitPoint) {
  // Two tight clusters far apart: the single best cut is between them.
  std::vector<Rect2D> rects;
  for (int i = 0; i < 4; ++i) rects.emplace_back(0, 0, 0.1, 0.1);
  for (int i = 0; i < 4; ++i) rects.emplace_back(10, 10, 10.1, 10.1);
  const SplitResult result = DpSplit(rects, 1);
  ASSERT_EQ(result.cuts.size(), 1u);
  EXPECT_EQ(result.cuts[0], 4);
  EXPECT_NEAR(result.total_volume, 0.01 * 4 * 2, 1e-9);
}

class DpOptimalityTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int, int>> {};

TEST_P(DpOptimalityTest, MatchesBruteForce) {
  const auto [seed, n, k] = GetParam();
  const std::vector<Rect2D> rects = RandomRects(seed, n);
  const SplitResult dp = DpSplit(rects, k);
  const double brute = BruteForceBestVolume(rects, k);
  EXPECT_NEAR(dp.total_volume, brute, 1e-9)
      << "seed=" << seed << " n=" << n << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    SmallInstances, DpOptimalityTest,
    ::testing::Combine(::testing::Values(11, 22, 33, 44),
                       ::testing::Values(6, 9, 12),
                       ::testing::Values(1, 2, 3)));

TEST(DpVolumeCurveTest, MonotoneNonIncreasing) {
  const std::vector<Rect2D> rects = RandomRects(7, 40);
  const std::vector<double> curve = DpVolumeCurve(rects, 20);
  ASSERT_EQ(curve.size(), 21u);
  for (size_t j = 1; j < curve.size(); ++j) {
    EXPECT_LE(curve[j], curve[j - 1] + 1e-12);
  }
  EXPECT_NEAR(curve[0], SplitVolume(rects, {}), 1e-9);
}

TEST(DpVolumeCurveTest, EachEntryMatchesDpSplit) {
  const std::vector<Rect2D> rects = RandomRects(8, 20);
  const std::vector<double> curve = DpVolumeCurve(rects, 6);
  for (int k = 0; k <= 6; ++k) {
    EXPECT_NEAR(curve[static_cast<size_t>(k)], DpSplit(rects, k).total_volume,
                1e-9);
  }
}

TEST(MergeSplitTest, ReportedVolumeMatchesCuts) {
  const std::vector<Rect2D> rects = RandomRects(9, 50);
  for (int k : {0, 1, 5, 20, 49}) {
    const SplitResult result = MergeSplit(rects, k);
    EXPECT_EQ(result.NumSplits(), std::min(k, 49));
    EXPECT_NEAR(result.total_volume, SplitVolume(rects, result.cuts), 1e-9);
  }
}

TEST(MergeSplitTest, NeverBeatsOptimal) {
  for (uint64_t seed : {10u, 20u, 30u, 40u, 50u}) {
    const std::vector<Rect2D> rects = RandomRects(seed, 30);
    for (int k : {1, 3, 7}) {
      const double dp = DpSplit(rects, k).total_volume;
      const double merge = MergeSplit(rects, k).total_volume;
      EXPECT_GE(merge, dp - 1e-9) << "seed=" << seed << " k=" << k;
      // ... and is usually close (within 2x is a loose sanity bound).
      EXPECT_LE(merge, 2.0 * dp + 1e-9) << "seed=" << seed << " k=" << k;
    }
  }
}

TEST(MergeSplitTest, CutsAreSortedAndInRange) {
  const std::vector<Rect2D> rects = RandomRects(12, 64);
  const SplitResult result = MergeSplit(rects, 10);
  ASSERT_EQ(result.cuts.size(), 10u);
  for (size_t i = 0; i < result.cuts.size(); ++i) {
    EXPECT_GT(result.cuts[i], 0);
    EXPECT_LT(result.cuts[i], 64);
    if (i > 0) {
      EXPECT_LT(result.cuts[i - 1], result.cuts[i]);
    }
  }
}

TEST(MergeVolumeCurveTest, MonotoneAndConsistent) {
  const std::vector<Rect2D> rects = RandomRects(13, 40);
  const std::vector<double> curve = MergeVolumeCurve(rects, 39);
  ASSERT_EQ(curve.size(), 40u);
  for (size_t j = 1; j < curve.size(); ++j) {
    EXPECT_LE(curve[j], curve[j - 1] + 1e-12);
  }
  // Fully split = sum of per-instant areas.
  double singleton_volume = 0.0;
  for (const Rect2D& rect : rects) singleton_volume += rect.Area();
  EXPECT_NEAR(curve[39], singleton_volume, 1e-9);
  EXPECT_NEAR(curve[0], SplitVolume(rects, {}), 1e-9);
}

TEST(MergeVolumeCurveTest, DominatedByDpCurve) {
  for (uint64_t seed : {14u, 15u, 16u}) {
    const std::vector<Rect2D> rects = RandomRects(seed, 25);
    const std::vector<double> dp = DpVolumeCurve(rects, 24);
    const std::vector<double> merge = MergeVolumeCurve(rects, 24);
    ASSERT_EQ(dp.size(), merge.size());
    for (size_t j = 0; j < dp.size(); ++j) {
      EXPECT_GE(merge[j], dp[j] - 1e-9) << "seed=" << seed << " j=" << j;
    }
  }
}

TEST(VolumeCurveTest, GainAccessors) {
  VolumeCurve curve;
  curve.volume = {10.0, 6.0, 5.0, 4.5};
  EXPECT_EQ(curve.MaxSplits(), 3);
  EXPECT_DOUBLE_EQ(curve.VolumeAt(0), 10.0);
  EXPECT_DOUBLE_EQ(curve.VolumeAt(99), 4.5);  // saturates
  EXPECT_DOUBLE_EQ(curve.Gain(1), 4.0);
  EXPECT_DOUBLE_EQ(curve.Gain(3), 0.5);
  EXPECT_DOUBLE_EQ(curve.Gain(4), 0.0);
  EXPECT_DOUBLE_EQ(curve.Gain2(0), 5.0);
  EXPECT_DOUBLE_EQ(curve.Gain2(2), 0.5);
}

TEST(PiecewiseSplitTest, CutsAtTupleBoundaries) {
  std::vector<MovementTuple> tuples;
  auto make_tuple = [](Time a, Time b, double x) {
    MovementTuple tuple;
    tuple.interval = TimeInterval(a, b);
    tuple.center_x = Polynomial::Constant(x);
    tuple.center_y = Polynomial::Constant(0.5);
    tuple.extent_x = Polynomial::Constant(0.01);
    tuple.extent_y = Polynomial::Constant(0.01);
    return tuple;
  };
  tuples.push_back(make_tuple(10, 15, 0.1));
  tuples.push_back(make_tuple(15, 22, 0.5));
  tuples.push_back(make_tuple(22, 30, 0.9));
  const Trajectory trajectory(3, std::move(tuples));
  const SplitResult result = PiecewiseSplit(trajectory);
  EXPECT_EQ(result.cuts, (std::vector<int>{5, 12}));

  int64_t total_splits = 0;
  const std::vector<SegmentRecord> records =
      PiecewiseSplitAll({trajectory}, &total_splits);
  EXPECT_EQ(total_splits, 2);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].box.interval, TimeInterval(10, 15));
  EXPECT_EQ(records[2].box.interval, TimeInterval(22, 30));
}

}  // namespace
}  // namespace stindex
