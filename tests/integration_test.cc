// End-to-end tests of the paper's full pipeline: generate a dataset,
// split it (single-object splitter + distribution algorithm), index the
// segments with both structures, and verify that every query answer
// matches a brute-force scan and that splitting actually reduces volume
// and PPR-tree query I/O.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/piecewise_split.h"
#include "core/split_pipeline.h"
#include "datagen/query_gen.h"
#include "datagen/railway.h"
#include "datagen/random_dataset.h"
#include "pprtree/ppr_tree.h"
#include "rstar/rstar_tree.h"

namespace stindex {
namespace {

// Logical answer: ids of *objects* intersecting the query, from first
// principles (the trajectories themselves).
std::set<ObjectId> TrueAnswer(const std::vector<Trajectory>& objects,
                              const STQuery& query) {
  std::set<ObjectId> hits;
  for (const Trajectory& object : objects) {
    if (!object.Lifetime().Intersects(query.range)) continue;
    const TimeInterval common = object.Lifetime().Intersection(query.range);
    for (Time t = common.start; t < common.end; ++t) {
      if (object.RectAt(t).Intersects(query.area)) {
        hits.insert(object.id());
        break;
      }
    }
  }
  return hits;
}

// Answer via segments: objects whose segment boxes intersect the query.
// Splitting tightens boxes, so this is a *superset* of the true answer
// that shrinks toward it as splits increase, and both indexes must return
// exactly this set.
std::set<ObjectId> SegmentAnswer(const std::vector<SegmentRecord>& records,
                                 const STQuery& query) {
  std::set<ObjectId> hits;
  for (const SegmentRecord& record : records) {
    if (record.box.interval.Intersects(query.range) &&
        record.box.rect.Intersects(query.area)) {
      hits.insert(record.object);
    }
  }
  return hits;
}

std::set<ObjectId> PprAnswer(const PprTree& tree,
                             const std::vector<SegmentRecord>& records,
                             const STQuery& query) {
  std::vector<PprDataId> raw;
  if (query.IsSnapshot()) {
    tree.SnapshotQuery(query.area, query.range.start, &raw);
  } else {
    tree.IntervalQuery(query.area, query.range, &raw);
  }
  std::set<ObjectId> hits;
  for (PprDataId id : raw) hits.insert(records[id].object);
  return hits;
}

std::set<ObjectId> RStarAnswer(const RStarTree& tree,
                               const std::vector<SegmentRecord>& records,
                               const STQuery& query, Time time_domain) {
  const Box3D window = QueryToBox(query, 0, time_domain);
  std::vector<DataId> raw;
  tree.Search(window, &raw);
  std::set<ObjectId> hits;
  for (DataId id : raw) hits.insert(records[id].object);
  return hits;
}

class PipelineTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(PipelineTest, BothIndexesAgreeWithScan) {
  const int64_t split_percent = GetParam();

  RandomDatasetConfig config;
  config.num_objects = 400;
  config.seed = 11;
  const std::vector<Trajectory> objects = GenerateRandomDataset(config);

  const int64_t budget =
      static_cast<int64_t>(objects.size()) * split_percent / 100;
  std::vector<SegmentRecord> records;
  if (budget == 0) {
    records = BuildUnsplitSegments(objects);
  } else {
    const std::vector<VolumeCurve> curves =
        ComputeVolumeCurves(objects, 99, SplitMethod::kMerge);
    const Distribution dist = DistributeLAGreedy(curves, budget);
    records = BuildSegments(objects, dist.splits, SplitMethod::kMerge);
    EXPECT_EQ(static_cast<int64_t>(records.size()),
              static_cast<int64_t>(objects.size()) + dist.TotalSplits());
  }

  std::unique_ptr<PprTree> ppr = BuildPprTree(records);
  ppr->CheckInvariants();

  RStarTree rstar;
  const std::vector<Box3D> boxes =
      SegmentsToBoxes(records, 0, config.time_domain);
  for (size_t i = 0; i < boxes.size(); ++i) {
    rstar.Insert(boxes[i], static_cast<DataId>(i));
  }
  rstar.CheckInvariants();

  QuerySetConfig snapshot_config = MixedSnapshotSet();
  snapshot_config.count = 60;
  QuerySetConfig range_config = SmallRangeSet();
  range_config.count = 60;
  std::vector<STQuery> queries = GenerateQuerySet(snapshot_config);
  const std::vector<STQuery> ranges = GenerateQuerySet(range_config);
  queries.insert(queries.end(), ranges.begin(), ranges.end());

  for (size_t q = 0; q < queries.size(); ++q) {
    const std::set<ObjectId> expected = SegmentAnswer(records, queries[q]);
    EXPECT_EQ(PprAnswer(*ppr, records, queries[q]), expected)
        << "ppr query " << q;
    EXPECT_EQ(RStarAnswer(rstar, records, queries[q], config.time_domain),
              expected)
        << "rstar query " << q;
    // The segment answer over-approximates but never misses an object.
    const std::set<ObjectId> truth = TrueAnswer(objects, queries[q]);
    EXPECT_TRUE(std::includes(expected.begin(), expected.end(),
                              truth.begin(), truth.end()))
        << "query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(SplitBudgets, PipelineTest,
                         ::testing::Values(0, 10, 50, 150));

TEST(PipelineIntegrationTest, SplittingReducesFalsePositives) {
  RandomDatasetConfig config;
  config.num_objects = 300;
  config.seed = 21;
  const std::vector<Trajectory> objects = GenerateRandomDataset(config);
  const std::vector<SegmentRecord> unsplit = BuildUnsplitSegments(objects);
  const std::vector<VolumeCurve> curves =
      ComputeVolumeCurves(objects, 99, SplitMethod::kMerge);
  const Distribution dist =
      DistributeLAGreedy(curves, static_cast<int64_t>(objects.size()) * 3 / 2);
  const std::vector<SegmentRecord> split =
      BuildSegments(objects, dist.splits, SplitMethod::kMerge);
  EXPECT_LT(TotalVolume(split), TotalVolume(unsplit));

  QuerySetConfig query_config = SmallSnapshotSet();
  query_config.count = 200;
  const std::vector<STQuery> queries = GenerateQuerySet(query_config);
  size_t unsplit_false = 0;
  size_t split_false = 0;
  for (const STQuery& query : queries) {
    const size_t truth = TrueAnswer(objects, query).size();
    unsplit_false += SegmentAnswer(unsplit, query).size() - truth;
    split_false += SegmentAnswer(split, query).size() - truth;
  }
  EXPECT_LT(split_false, unsplit_false);
}

TEST(PipelineIntegrationTest, SplittingReducesPprIo) {
  // Dense enough (~150 alive per instant) that the ephemeral trees are
  // multi-level and MBR tightening is visible in the I/O counts.
  RandomDatasetConfig config;
  config.num_objects = 1200;
  config.time_domain = 250;
  config.max_lifetime = 60;
  config.seed = 31;
  const std::vector<Trajectory> objects = GenerateRandomDataset(config);

  QuerySetConfig query_config = MixedSnapshotSet();
  query_config.count = 120;
  query_config.time_domain = config.time_domain;
  const std::vector<STQuery> queries = GenerateQuerySet(query_config);

  auto average_io = [&queries](const PprTree& tree) {
    uint64_t misses = 0;
    std::vector<PprDataId> results;
    for (const STQuery& query : queries) {
      tree.ResetQueryState();
      tree.IntervalQuery(query.area, query.range, &results);
      misses += tree.stats().misses;
    }
    return static_cast<double>(misses) / static_cast<double>(queries.size());
  };

  const std::vector<SegmentRecord> unsplit = BuildUnsplitSegments(objects);
  std::unique_ptr<PprTree> tree_unsplit = BuildPprTree(unsplit);

  const std::vector<VolumeCurve> curves =
      ComputeVolumeCurves(objects, 99, SplitMethod::kMerge);
  const Distribution dist =
      DistributeLAGreedy(curves, static_cast<int64_t>(objects.size()) * 3 / 2);
  const std::vector<SegmentRecord> split =
      BuildSegments(objects, dist.splits, SplitMethod::kMerge);
  std::unique_ptr<PprTree> tree_split = BuildPprTree(split);

  // The headline claim: splits improve PPR-tree query I/O.
  EXPECT_LT(average_io(*tree_split), average_io(*tree_unsplit));
}

TEST(PipelineIntegrationTest, RailwayEndToEnd) {
  RailwayDatasetConfig config;
  config.num_trains = 400;
  const std::vector<Trajectory> trains = GenerateRailwayDataset(config);
  const std::vector<VolumeCurve> curves =
      ComputeVolumeCurves(trains, 30, SplitMethod::kMerge);
  const Distribution dist =
      DistributeLAGreedy(curves, static_cast<int64_t>(trains.size()));
  const std::vector<SegmentRecord> records =
      BuildSegments(trains, dist.splits, SplitMethod::kMerge);

  std::unique_ptr<PprTree> ppr = BuildPprTree(records);
  ppr->CheckInvariants();

  QuerySetConfig query_config = MixedSnapshotSet();
  query_config.count = 80;
  const std::vector<STQuery> queries = GenerateQuerySet(query_config);
  for (size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(PprAnswer(*ppr, records, queries[q]),
              SegmentAnswer(records, queries[q]))
        << "railway query " << q;
  }
}

TEST(PipelineIntegrationTest, PiecewiseSplitIndexesCorrectly) {
  RandomDatasetConfig config;
  config.num_objects = 250;
  config.seed = 41;
  const std::vector<Trajectory> objects = GenerateRandomDataset(config);
  int64_t total_splits = 0;
  const std::vector<SegmentRecord> records =
      PiecewiseSplitAll(objects, &total_splits);
  EXPECT_EQ(records.size(), objects.size() + static_cast<size_t>(total_splits));

  std::unique_ptr<PprTree> ppr = BuildPprTree(records);
  ppr->CheckInvariants();
  QuerySetConfig query_config = SmallSnapshotSet();
  query_config.count = 60;
  const std::vector<STQuery> queries = GenerateQuerySet(query_config);
  for (const STQuery& query : queries) {
    EXPECT_EQ(PprAnswer(*ppr, records, query),
              SegmentAnswer(records, query));
  }
}

}  // namespace
}  // namespace stindex
