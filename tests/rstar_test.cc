#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "rstar/rstar_tree.h"
#include "util/random.h"

namespace stindex {
namespace {

Box3D RandomBox(Rng& rng, double max_extent = 0.05) {
  const double x = rng.UniformDouble(0, 1);
  const double y = rng.UniformDouble(0, 1);
  const double t = rng.UniformDouble(0, 1);
  return Box3D(x, y, t, x + rng.UniformDouble(0, max_extent),
               y + rng.UniformDouble(0, max_extent),
               t + rng.UniformDouble(0, max_extent));
}

std::vector<DataId> BruteForceSearch(const std::vector<Box3D>& boxes,
                                     const Box3D& query) {
  std::vector<DataId> hits;
  for (size_t i = 0; i < boxes.size(); ++i) {
    if (boxes[i].Intersects(query)) hits.push_back(i);
  }
  return hits;
}

TEST(RStarTreeTest, EmptyTree) {
  RStarTree tree;
  EXPECT_EQ(tree.Size(), 0u);
  EXPECT_EQ(tree.Height(), 0u);
  std::vector<DataId> results;
  tree.Search(Box3D(0, 0, 0, 1, 1, 1), &results);
  EXPECT_TRUE(results.empty());
  tree.CheckInvariants();
}

TEST(RStarTreeTest, SingleInsertAndHit) {
  RStarTree tree;
  tree.Insert(Box3D(0.4, 0.4, 0.4, 0.6, 0.6, 0.6), 99);
  EXPECT_EQ(tree.Size(), 1u);
  EXPECT_EQ(tree.Height(), 1u);
  std::vector<DataId> results;
  tree.Search(Box3D(0.5, 0.5, 0.5, 0.7, 0.7, 0.7), &results);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], 99u);
  tree.Search(Box3D(0.7, 0.7, 0.7, 0.9, 0.9, 0.9), &results);
  EXPECT_TRUE(results.empty());
}

TEST(RStarTreeTest, GrowsBeyondOneNode) {
  RStarTree tree;
  Rng rng(5);
  for (DataId i = 0; i < 500; ++i) tree.Insert(RandomBox(rng), i);
  EXPECT_EQ(tree.Size(), 500u);
  EXPECT_GE(tree.Height(), 2u);
  EXPECT_GT(tree.PageCount(), 10u);
  tree.CheckInvariants();
}

TEST(RStarTreeTest, SearchCountsDiskAccesses) {
  RStarTree tree;
  Rng rng(6);
  for (DataId i = 0; i < 500; ++i) tree.Insert(RandomBox(rng), i);
  tree.ResetQueryState();
  std::vector<DataId> results;
  tree.Search(Box3D(0.4, 0.4, 0.4, 0.6, 0.6, 0.6), &results);
  EXPECT_GT(tree.stats().accesses, 0u);
  EXPECT_GT(tree.stats().misses, 0u);
  EXPECT_LE(tree.stats().misses, tree.stats().accesses);
}

TEST(RStarTreeTest, DuplicateBoxesAllRetrievable) {
  RStarTree tree;
  const Box3D box(0.5, 0.5, 0.5, 0.55, 0.55, 0.55);
  for (DataId i = 0; i < 120; ++i) tree.Insert(box, i);
  std::vector<DataId> results;
  tree.Search(box, &results);
  EXPECT_EQ(results.size(), 120u);
  tree.CheckInvariants();
}

TEST(RStarTreeTest, SmallNodeCapacity) {
  RStarConfig config;
  config.max_entries = 4;
  config.min_entries = 2;
  config.reinsert_count = 1;
  RStarTree tree(config);
  Rng rng(7);
  std::vector<Box3D> boxes;
  for (DataId i = 0; i < 200; ++i) {
    boxes.push_back(RandomBox(rng));
    tree.Insert(boxes.back(), i);
  }
  tree.CheckInvariants();
  EXPECT_GE(tree.Height(), 3u);
  for (int q = 0; q < 20; ++q) {
    const Box3D query = RandomBox(rng, 0.3);
    std::vector<DataId> results;
    tree.Search(query, &results);
    std::sort(results.begin(), results.end());
    EXPECT_EQ(results, BruteForceSearch(boxes, query));
  }
}

class RStarEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RStarEquivalenceTest, MatchesLinearScan) {
  Rng rng(GetParam());
  RStarTree tree;
  std::vector<Box3D> boxes;
  const size_t n = 800;
  for (DataId i = 0; i < n; ++i) {
    boxes.push_back(RandomBox(rng));
    tree.Insert(boxes.back(), i);
  }
  tree.CheckInvariants();
  for (int q = 0; q < 50; ++q) {
    const Box3D query = RandomBox(rng, 0.2);
    std::vector<DataId> results;
    tree.Search(query, &results);
    std::sort(results.begin(), results.end());
    EXPECT_EQ(results, BruteForceSearch(boxes, query)) << "query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RStarEquivalenceTest,
                         ::testing::Values(101, 102, 103, 104, 105, 106));

TEST(RStarTreeTest, DegenerateBoxes) {
  RStarTree tree;
  // Points (zero extent in every dimension).
  for (DataId i = 0; i < 60; ++i) {
    const double v = static_cast<double>(i) / 60.0;
    tree.Insert(Box3D(v, v, v, v, v, v), i);
  }
  tree.CheckInvariants();
  std::vector<DataId> results;
  tree.Search(Box3D(0.0, 0.0, 0.0, 0.5, 0.5, 0.5), &results);
  EXPECT_EQ(results.size(), 31u);  // i/60 <= 0.5 for i = 0..30
}

TEST(RStarTreeTest, SkewedClusteredData) {
  // Heavy clustering exercises the split heuristics and reinsertion.
  RStarTree tree;
  Rng rng(8);
  std::vector<Box3D> boxes;
  for (int cluster = 0; cluster < 5; ++cluster) {
    const double cx = rng.UniformDouble(0.1, 0.9);
    const double cy = rng.UniformDouble(0.1, 0.9);
    for (int i = 0; i < 150; ++i) {
      const double x = cx + rng.UniformDouble(-0.02, 0.02);
      const double y = cy + rng.UniformDouble(-0.02, 0.02);
      const double t = rng.UniformDouble(0, 1);
      boxes.emplace_back(x, y, t, x + 0.01, y + 0.01, t + 0.01);
      tree.Insert(boxes.back(), boxes.size() - 1);
    }
  }
  tree.CheckInvariants();
  for (int q = 0; q < 30; ++q) {
    const Box3D query = RandomBox(rng, 0.15);
    std::vector<DataId> results;
    tree.Search(query, &results);
    std::sort(results.begin(), results.end());
    EXPECT_EQ(results, BruteForceSearch(boxes, query));
  }
}

TEST(RStarTreeTest, QueryIoSmallerThanFullScanForSelectiveQueries) {
  RStarTree tree;
  Rng rng(9);
  for (DataId i = 0; i < 3000; ++i) tree.Insert(RandomBox(rng, 0.01), i);
  uint64_t total_misses = 0;
  std::vector<DataId> results;
  for (int q = 0; q < 20; ++q) {
    tree.ResetQueryState();
    tree.Search(RandomBox(rng, 0.02), &results);
    total_misses += tree.stats().misses;
  }
  // Selective queries must touch far fewer pages than the whole index.
  EXPECT_LT(total_misses / 20, tree.PageCount() / 4);
}

}  // namespace
}  // namespace stindex
