// Differential tests for the storage backends: the same seeded dataset
// indexed three ways — the legacy in-memory PageStore, a persisted
// MemoryPageBackend, and a persisted FilePageBackend — must answer every
// query byte-identically and with identical per-query buffer-miss counts
// (the paper's "disk accesses" metric), at every thread count. This pins
// the tentpole property that moving the experiments onto real files
// changes nothing about the reported numbers.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/distribute.h"
#include "core/split_pipeline.h"
#include "datagen/query_gen.h"
#include "datagen/random_dataset.h"
#include "live/live_tier.h"
#include "pprtree/ppr_tree.h"
#include "rstar/rstar_tree.h"
#include "storage/file_backend.h"
#include "storage/page_backend.h"
#include "storage/shared_buffer_pool.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace stindex {
namespace {

constexpr Time kTimeDomain = 1000;

// What one query produced: the answer ids in traversal order plus the
// buffer misses it cost. Equality means "indistinguishable runs".
struct QueryOutcome {
  std::vector<uint64_t> results;
  uint64_t misses = 0;

  bool operator==(const QueryOutcome& other) const {
    return results == other.results && misses == other.misses;
  }
};

std::vector<SegmentRecord> MakeRecords() {
  RandomDatasetConfig config;
  config.num_objects = 300;
  config.seed = 42;
  config.time_domain = kTimeDomain;
  const std::vector<Trajectory> objects = GenerateRandomDataset(config);
  const std::vector<VolumeCurve> curves =
      ComputeVolumeCurves(objects, /*k_max=*/16, SplitMethod::kMerge, 1);
  const Distribution dist = DistributeLAGreedy(
      curves, static_cast<int64_t>(objects.size()), 1);
  return BuildSegments(objects, dist.splits, SplitMethod::kMerge, 1);
}

std::vector<STQuery> MakeQueries() {
  QuerySetConfig config = MixedSnapshotSet();
  config.count = 48;
  config.time_domain = kTimeDomain;
  std::vector<STQuery> queries = GenerateQuerySet(config);
  QuerySetConfig ranges = SmallRangeSet();
  ranges.count = 24;
  ranges.time_domain = kTimeDomain;
  for (const STQuery& query : GenerateQuerySet(ranges)) {
    queries.push_back(query);
  }
  return queries;
}

std::unique_ptr<PageBackend> MakeFileBackend(const std::string& name) {
  Result<std::unique_ptr<FilePageBackend>> backend =
      FilePageBackend::Create(::testing::TempDir() + "/" + name + ".stpages");
  EXPECT_TRUE(backend.ok()) << backend.status().ToString();
  return std::move(backend).value();
}

// Runs the query set against `tree` with `num_threads` workers, one
// private query buffer per chunk, cache reset before every query (the
// paper protocol and the bench drivers' shape).
template <typename RunQuery>
std::vector<QueryOutcome> RunAll(const std::vector<STQuery>& queries,
                                 int num_threads,
                                 const RunQuery& run_query) {
  std::vector<QueryOutcome> outcomes(queries.size());
  ParallelFor(num_threads, queries.size(),
              [&](size_t /*chunk*/, size_t begin, size_t end) {
                for (size_t q = begin; q < end; ++q) {
                  outcomes[q] = run_query(queries[q]);
                }
              });
  return outcomes;
}

std::vector<QueryOutcome> RunPpr(const PprTree& tree,
                                 const std::vector<STQuery>& queries,
                                 int num_threads) {
  return RunAll(queries, num_threads, [&tree](const STQuery& query) {
    // A fresh 10-page buffer per query keeps chunks independent, so the
    // outcome vector cannot depend on the partition.
    std::unique_ptr<BufferPool> buffer = tree.NewQueryBuffer();
    std::vector<PprDataId> results;
    if (query.IsSnapshot()) {
      tree.SnapshotQuery(query.area, query.range.start, buffer.get(),
                         &results);
    } else {
      tree.IntervalQuery(query.area, query.range, buffer.get(), &results);
    }
    QueryOutcome outcome;
    outcome.results.assign(results.begin(), results.end());
    outcome.misses = buffer->stats().misses;
    return outcome;
  });
}

std::vector<QueryOutcome> RunRStar(const RStarTree& tree,
                                   const std::vector<STQuery>& queries,
                                   int num_threads) {
  return RunAll(queries, num_threads, [&tree](const STQuery& query) {
    std::unique_ptr<BufferPool> buffer = tree.NewQueryBuffer();
    std::vector<DataId> results;
    tree.Search(QueryToBox(query, 0, kTimeDomain), buffer.get(), &results);
    QueryOutcome outcome;
    outcome.results.assign(results.begin(), results.end());
    outcome.misses = buffer->stats().misses;
    return outcome;
  });
}

// Same protocol through ONE shared pool for the whole run: per-chunk
// Sessions simulate the private 10-page LRU (reset per query) while the
// real frames are shared, so the outcomes must stay byte-identical to
// the private-pool baseline at every thread count.
template <typename RunQuery>
std::vector<QueryOutcome> RunShared(const std::vector<STQuery>& queries,
                                    int num_threads, SharedBufferPool* pool,
                                    const RunQuery& run_query) {
  std::vector<QueryOutcome> outcomes(queries.size());
  const size_t protocol_pages = pool->capacity();
  ParallelFor(num_threads, queries.size(),
              [&](size_t /*chunk*/, size_t begin, size_t end) {
                SharedBufferPool::Session session(pool, protocol_pages);
                for (size_t q = begin; q < end; ++q) {
                  session.ResetCache();
                  session.ResetStats();
                  outcomes[q] = run_query(queries[q], &session);
                  outcomes[q].misses = session.stats().misses;
                }
              });
  return outcomes;
}

std::vector<QueryOutcome> RunPprShared(const PprTree& tree,
                                       const std::vector<STQuery>& queries,
                                       int num_threads) {
  const std::unique_ptr<SharedBufferPool> pool = tree.NewSharedQueryPool();
  return RunShared(queries, num_threads, pool.get(),
                   [&tree](const STQuery& query, PageCache* buffer) {
                     std::vector<PprDataId> results;
                     if (query.IsSnapshot()) {
                       tree.SnapshotQuery(query.area, query.range.start,
                                          buffer, &results);
                     } else {
                       tree.IntervalQuery(query.area, query.range, buffer,
                                          &results);
                     }
                     QueryOutcome outcome;
                     outcome.results.assign(results.begin(), results.end());
                     return outcome;
                   });
}

std::vector<QueryOutcome> RunRStarShared(const RStarTree& tree,
                                         const std::vector<STQuery>& queries,
                                         int num_threads) {
  const std::unique_ptr<SharedBufferPool> pool = tree.NewSharedQueryPool();
  return RunShared(queries, num_threads, pool.get(),
                   [&tree](const STQuery& query, PageCache* buffer) {
                     std::vector<DataId> results;
                     tree.Search(QueryToBox(query, 0, kTimeDomain), buffer,
                                 &results);
                     QueryOutcome outcome;
                     outcome.results.assign(results.begin(), results.end());
                     return outcome;
                   });
}

uint64_t FileReads() {
  return MetricRegistry::Global().GetCounter("backend.file.reads")->Value();
}

uint64_t TotalMisses(const std::vector<QueryOutcome>& outcomes) {
  uint64_t total = 0;
  for (const QueryOutcome& outcome : outcomes) total += outcome.misses;
  return total;
}

TEST(BackendDifferentialTest, PprTreeIdenticalAcrossBackendsAndThreads) {
  const std::vector<SegmentRecord> records = MakeRecords();
  const std::vector<STQuery> queries = MakeQueries();

  const std::unique_ptr<PprTree> store_tree = BuildPprTree(records);
  const std::unique_ptr<PprTree> memory_tree = BuildPprTree(records);
  ASSERT_TRUE(
      memory_tree->AttachBackend(std::make_unique<MemoryPageBackend>()).ok());
  const std::unique_ptr<PprTree> file_tree = BuildPprTree(records);
  ASSERT_TRUE(file_tree->AttachBackend(MakeFileBackend("diff_ppr")).ok());

  const std::vector<QueryOutcome> baseline = RunPpr(*store_tree, queries, 1);
  ASSERT_GT(TotalMisses(baseline), 0u);

  const uint64_t reads_before = FileReads();
  for (const int threads : {1, 2, 7}) {
    EXPECT_EQ(RunPpr(*store_tree, queries, threads), baseline)
        << "store backend, threads=" << threads;
    EXPECT_EQ(RunPpr(*memory_tree, queries, threads), baseline)
        << "memory backend, threads=" << threads;
    EXPECT_EQ(RunPpr(*file_tree, queries, threads), baseline)
        << "file backend, threads=" << threads;
  }
  // The file runs really hit the disk: every miss was a pread.
  EXPECT_EQ(FileReads() - reads_before, 3 * TotalMisses(baseline));
}

TEST(BackendDifferentialTest, PprSharedPoolMatchesPrivateBaseline) {
  // The tentpole invariant: answers AND aggregate protocol miss counts
  // through one shared pool are byte-identical to the per-worker
  // private-pool baseline at every thread count, while the real reads
  // underneath are deduplicated pool-wide.
  const std::vector<SegmentRecord> records = MakeRecords();
  const std::vector<STQuery> queries = MakeQueries();

  const std::unique_ptr<PprTree> store_tree = BuildPprTree(records);
  const std::unique_ptr<PprTree> file_tree = BuildPprTree(records);
  ASSERT_TRUE(
      file_tree->AttachBackend(MakeFileBackend("diff_ppr_shared")).ok());

  const std::vector<QueryOutcome> baseline = RunPpr(*store_tree, queries, 1);
  ASSERT_GT(TotalMisses(baseline), 0u);

  for (const int threads : {1, 2, 7, 16}) {
    EXPECT_EQ(RunPprShared(*store_tree, queries, threads), baseline)
        << "store backend, threads=" << threads;
    const uint64_t reads_before = FileReads();
    EXPECT_EQ(RunPprShared(*file_tree, queries, threads), baseline)
        << "file backend, threads=" << threads;
    // Shared residency: the run really read the file, but never more
    // than the protocol misses (shared frames only deduplicate).
    const uint64_t reads = FileReads() - reads_before;
    EXPECT_GT(reads, 0u) << "threads=" << threads;
    EXPECT_LE(reads, TotalMisses(baseline)) << "threads=" << threads;
  }
}

TEST(BackendDifferentialTest, RStarTreeIdenticalAcrossBackendsAndThreads) {
  const std::vector<SegmentRecord> records = MakeRecords();
  const std::vector<STQuery> queries = MakeQueries();
  const std::vector<Box3D> boxes = SegmentsToBoxes(records, 0, kTimeDomain);

  const auto build = [&boxes] {
    auto tree = std::make_unique<RStarTree>();
    for (size_t i = 0; i < boxes.size(); ++i) {
      tree->Insert(boxes[i], static_cast<DataId>(i));
    }
    return tree;
  };
  const std::unique_ptr<RStarTree> store_tree = build();
  const std::unique_ptr<RStarTree> memory_tree = build();
  ASSERT_TRUE(
      memory_tree->AttachBackend(std::make_unique<MemoryPageBackend>()).ok());
  const std::unique_ptr<RStarTree> file_tree = build();
  ASSERT_TRUE(file_tree->AttachBackend(MakeFileBackend("diff_rstar")).ok());

  const std::vector<QueryOutcome> baseline = RunRStar(*store_tree, queries, 1);
  ASSERT_GT(TotalMisses(baseline), 0u);

  const uint64_t reads_before = FileReads();
  for (const int threads : {1, 2, 7}) {
    EXPECT_EQ(RunRStar(*store_tree, queries, threads), baseline)
        << "store backend, threads=" << threads;
    EXPECT_EQ(RunRStar(*memory_tree, queries, threads), baseline)
        << "memory backend, threads=" << threads;
    EXPECT_EQ(RunRStar(*file_tree, queries, threads), baseline)
        << "file backend, threads=" << threads;
  }
  EXPECT_EQ(FileReads() - reads_before, 3 * TotalMisses(baseline));
}

TEST(BackendDifferentialTest, RStarSharedPoolMatchesPrivateBaseline) {
  const std::vector<SegmentRecord> records = MakeRecords();
  const std::vector<STQuery> queries = MakeQueries();
  const std::vector<Box3D> boxes = SegmentsToBoxes(records, 0, kTimeDomain);

  const auto build = [&boxes] {
    auto tree = std::make_unique<RStarTree>();
    for (size_t i = 0; i < boxes.size(); ++i) {
      tree->Insert(boxes[i], static_cast<DataId>(i));
    }
    return tree;
  };
  const std::unique_ptr<RStarTree> store_tree = build();
  const std::unique_ptr<RStarTree> file_tree = build();
  ASSERT_TRUE(
      file_tree->AttachBackend(MakeFileBackend("diff_rstar_shared")).ok());

  const std::vector<QueryOutcome> baseline = RunRStar(*store_tree, queries, 1);
  ASSERT_GT(TotalMisses(baseline), 0u);

  for (const int threads : {1, 2, 7, 16}) {
    EXPECT_EQ(RunRStarShared(*store_tree, queries, threads), baseline)
        << "store backend, threads=" << threads;
    const uint64_t reads_before = FileReads();
    EXPECT_EQ(RunRStarShared(*file_tree, queries, threads), baseline)
        << "file backend, threads=" << threads;
    const uint64_t reads = FileReads() - reads_before;
    EXPECT_GT(reads, 0u) << "threads=" << threads;
    EXPECT_LE(reads, TotalMisses(baseline)) << "threads=" << threads;
  }
}

TEST(BackendDifferentialTest, FileBackendSurvivesReopen) {
  // Persist an R*-tree to a file, then read the raw pages back through a
  // freshly opened backend: every live page must decode to the same bytes
  // the original backend serves.
  const std::vector<SegmentRecord> records = MakeRecords();
  const std::vector<Box3D> boxes = SegmentsToBoxes(records, 0, kTimeDomain);
  auto tree = std::make_unique<RStarTree>();
  for (size_t i = 0; i < boxes.size(); ++i) {
    tree->Insert(boxes[i], static_cast<DataId>(i));
  }
  const std::string path = ::testing::TempDir() + "/diff_reopen.stpages";
  Result<std::unique_ptr<FilePageBackend>> created =
      FilePageBackend::Create(path);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ASSERT_TRUE(tree->AttachBackend(std::move(created).value()).ok());
  const size_t live = tree->backend()->LivePageCount();
  const size_t slots = tree->backend()->SlotCount();
  ASSERT_GT(live, 0u);

  std::vector<std::vector<uint8_t>> original(slots);
  for (PageId id = 0; id < slots; ++id) {
    if (!tree->backend()->IsAllocated(id)) continue;
    original[id].resize(kPageSize);
    ASSERT_TRUE(tree->backend()->Read(id, original[id].data()).ok());
  }
  tree.reset();  // syncs and closes the file

  Result<std::unique_ptr<FilePageBackend>> reopened =
      FilePageBackend::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->LivePageCount(), live);
  EXPECT_EQ(reopened.value()->SlotCount(), slots);
  for (PageId id = 0; id < slots; ++id) {
    if (original[id].empty()) {
      EXPECT_FALSE(reopened.value()->IsAllocated(id));
      continue;
    }
    uint8_t buffer[kPageSize];
    ASSERT_TRUE(reopened.value()->Read(id, buffer).ok());
    EXPECT_EQ(std::memcmp(buffer, original[id].data(), kPageSize), 0)
        << "page " << id;
  }
}

// The live-ingestion differential (the Figure 17/18 protocol run through
// the live tier): streaming a dataset through LiveIndex -> WAL ->
// MigrationPipeline must leave a PPR-tree *byte-identical* to batch-
// building one from the very segments the migration produced — same
// answers AND same per-query miss counts, at every thread count. This
// pins the pipeline's ordering claim: watermark-gated event application
// replays exactly the (time, deletes-first, id) sequence BuildPprTree
// uses.
TEST(BackendDifferentialTest, LiveIngestedPprMatchesBatchBuild) {
  RandomDatasetConfig config;
  config.num_objects = 300;
  config.seed = 42;
  config.time_domain = kTimeDomain;
  const std::vector<Trajectory> objects = GenerateRandomDataset(config);
  const std::vector<STQuery> queries = MakeQueries();

  LiveTierOptions options;
  options.index.capacity = 24;
  options.index.buffer = 4000;
  Result<std::unique_ptr<LiveTier>> tier =
      LiveTier::Open(options, std::make_unique<MemoryPageBackend>());
  ASSERT_TRUE(tier.ok()) << tier.status().ToString();

  const std::vector<LiveObservation> stream = MakeObservationStream(objects);
  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(tier.value()->Apply(stream[i]).ok());
    if ((i + 1) % 64 == 0) {
      ASSERT_TRUE(tier.value()->Commit().ok());
    }
  }
  ASSERT_TRUE(tier.value()->Finish().ok());

  const std::vector<SegmentRecord>& segments =
      tier.value()->migrated_segments();
  ASSERT_GT(segments.size(), objects.size());
  const std::unique_ptr<PprTree> batch = BuildPprTree(segments);

  // Identical structure, not just identical answers.
  EXPECT_EQ(tier.value()->historical().PageCount(), batch->PageCount());
  EXPECT_EQ(tier.value()->historical().NumRoots(), batch->NumRoots());

  const std::vector<QueryOutcome> baseline = RunPpr(*batch, queries, 1);
  ASSERT_GT(TotalMisses(baseline), 0u);
  for (const int threads : {1, 2, 7}) {
    EXPECT_EQ(RunPpr(tier.value()->historical(), queries, threads), baseline)
        << "live-ingested tree, threads=" << threads;
  }

  // And the tiered query facade agrees with the batch tree at object
  // granularity.
  for (size_t q = 0; q < queries.size(); ++q) {
    std::vector<ObjectId> want;
    for (const uint64_t id : baseline[q].results) {
      want.push_back(segments[id].object);
    }
    std::sort(want.begin(), want.end());
    want.erase(std::unique(want.begin(), want.end()), want.end());
    std::vector<ObjectId> got;
    tier.value()->IntervalQuery(queries[q].area, queries[q].range, &got);
    EXPECT_EQ(got, want) << "query " << q;
  }
}

}  // namespace
}  // namespace stindex
