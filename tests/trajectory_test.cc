#include <gtest/gtest.h>

#include "trajectory/polynomial.h"
#include "trajectory/prefix_mbr.h"
#include "trajectory/trajectory.h"
#include "util/random.h"

namespace stindex {
namespace {

TEST(PolynomialTest, EvaluateConstantLinearQuadratic) {
  EXPECT_DOUBLE_EQ(Polynomial::Constant(3.0).Evaluate(100.0), 3.0);
  EXPECT_DOUBLE_EQ(Polynomial::Linear(1.0, 2.0).Evaluate(3.0), 7.0);
  const Polynomial quad({1.0, -2.0, 0.5});
  EXPECT_DOUBLE_EQ(quad.Evaluate(0.0), 1.0);
  EXPECT_DOUBLE_EQ(quad.Evaluate(2.0), 1.0 - 4.0 + 2.0);
}

TEST(PolynomialTest, DegreeTrimsTrailingZeros) {
  EXPECT_EQ(Polynomial({1.0, 0.0, 0.0}).Degree(), 0);
  EXPECT_EQ(Polynomial({1.0, 2.0, 0.0}).Degree(), 1);
  EXPECT_EQ(Polynomial({0.0, 0.0, 3.0}).Degree(), 2);
}

TEST(PolynomialTest, Derivative) {
  const Polynomial quad({1.0, 2.0, 3.0});
  const Polynomial derivative = quad.Derivative();
  EXPECT_EQ(derivative, Polynomial({2.0, 6.0}));
  EXPECT_EQ(Polynomial::Constant(5.0).Derivative(),
            Polynomial::Constant(0.0));
}

MovementTuple MakeTuple(Time start, Time end, Polynomial cx, Polynomial cy,
                        double extent = 0.1) {
  MovementTuple tuple;
  tuple.interval = TimeInterval(start, end);
  tuple.center_x = std::move(cx);
  tuple.center_y = std::move(cy);
  tuple.extent_x = Polynomial::Constant(extent);
  tuple.extent_y = Polynomial::Constant(extent);
  return tuple;
}

TEST(MovementTupleTest, RectAtUsesLocalTime) {
  // Center moves from (0, 0) at local time 0 to (10, 5) at local time 10.
  const MovementTuple tuple = MakeTuple(
      100, 111, Polynomial::Linear(0.0, 1.0), Polynomial::Linear(0.0, 0.5));
  const Rect2D at_start = tuple.RectAt(100);
  EXPECT_DOUBLE_EQ(at_start.Center().x, 0.0);
  const Rect2D at_105 = tuple.RectAt(105);
  EXPECT_DOUBLE_EQ(at_105.Center().x, 5.0);
  EXPECT_DOUBLE_EQ(at_105.Center().y, 2.5);
  EXPECT_NEAR(at_105.Width(), 0.1, 1e-12);
}

TEST(MovementTupleTest, NegativeExtentClampsToPoint) {
  MovementTuple tuple = MakeTuple(0, 10, Polynomial::Constant(0.5),
                                  Polynomial::Constant(0.5));
  tuple.extent_x = Polynomial::Linear(0.1, -0.05);  // negative from s=2
  const Rect2D rect = tuple.RectAt(5);
  EXPECT_DOUBLE_EQ(rect.Width(), 0.0);
  EXPECT_TRUE(rect.IsValid());
}

Trajectory MakeTwoPhaseTrajectory() {
  // Phase 1 [0, 5): moves right. Phase 2 [5, 10): moves up.
  std::vector<MovementTuple> tuples;
  tuples.push_back(MakeTuple(0, 5, Polynomial::Linear(0.0, 0.1),
                             Polynomial::Constant(0.0)));
  tuples.push_back(MakeTuple(5, 10, Polynomial::Constant(0.5),
                             Polynomial::Linear(0.0, 0.1)));
  return Trajectory(7, std::move(tuples));
}

TEST(TrajectoryTest, LifetimeAndValidation) {
  const Trajectory trajectory = MakeTwoPhaseTrajectory();
  EXPECT_TRUE(trajectory.Validate().ok());
  EXPECT_EQ(trajectory.Lifetime(), TimeInterval(0, 10));
  EXPECT_EQ(trajectory.NumInstants(), 10);
  EXPECT_EQ(trajectory.id(), 7u);
}

TEST(TrajectoryTest, ValidationRejectsGaps) {
  std::vector<MovementTuple> tuples;
  tuples.push_back(MakeTuple(0, 5, Polynomial::Constant(0.0),
                             Polynomial::Constant(0.0)));
  tuples.push_back(MakeTuple(6, 10, Polynomial::Constant(0.0),
                             Polynomial::Constant(0.0)));
  const Trajectory trajectory(0, std::move(tuples));
  EXPECT_FALSE(trajectory.Validate().ok());
}

TEST(TrajectoryTest, ValidationRejectsEmpty) {
  const Trajectory trajectory(0, {});
  EXPECT_FALSE(trajectory.Validate().ok());
}

TEST(TrajectoryTest, RectAtSelectsCorrectTuple) {
  const Trajectory trajectory = MakeTwoPhaseTrajectory();
  EXPECT_DOUBLE_EQ(trajectory.RectAt(2).Center().x, 0.2);
  EXPECT_DOUBLE_EQ(trajectory.RectAt(2).Center().y, 0.0);
  EXPECT_DOUBLE_EQ(trajectory.RectAt(7).Center().x, 0.5);
  EXPECT_DOUBLE_EQ(trajectory.RectAt(7).Center().y, 0.2);
}

TEST(TrajectoryTest, SampleMatchesRectAt) {
  const Trajectory trajectory = MakeTwoPhaseTrajectory();
  const std::vector<Rect2D> rects = trajectory.Sample();
  ASSERT_EQ(rects.size(), 10u);
  for (Time t = 0; t < 10; ++t) {
    EXPECT_EQ(rects[static_cast<size_t>(t)], trajectory.RectAt(t));
  }
}

TEST(TrajectoryTest, MbrOverSubrange) {
  const Trajectory trajectory = MakeTwoPhaseTrajectory();
  const Rect2D mbr = trajectory.MbrOver(TimeInterval(0, 3));
  // Centers 0.0, 0.1, 0.2 with extent 0.1.
  EXPECT_NEAR(mbr.xlo, -0.05, 1e-12);
  EXPECT_NEAR(mbr.xhi, 0.25, 1e-12);
}

TEST(TrajectoryTest, FullBoxCoversEverything) {
  const Trajectory trajectory = MakeTwoPhaseTrajectory();
  const STBox box = trajectory.FullBox();
  EXPECT_EQ(box.interval, TimeInterval(0, 10));
  for (const Rect2D& rect : trajectory.Sample()) {
    EXPECT_TRUE(box.rect.Contains(rect));
  }
}

TEST(TrajectoryTest, ChangePointsAreTupleBoundaries) {
  const Trajectory trajectory = MakeTwoPhaseTrajectory();
  const std::vector<Time> points = trajectory.ChangePoints();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0], 5);
}

TEST(MbrVolumeTableTest, SingleInstantRun) {
  const std::vector<Rect2D> rects = {Rect2D(0, 0, 2, 3)};
  const MbrVolumeTable table(rects);
  EXPECT_DOUBLE_EQ(table.RunVolume(0, 0), 6.0);
}

TEST(MbrVolumeTableTest, RunVolumeMatchesManualComputation) {
  const std::vector<Rect2D> rects = {
      Rect2D(0, 0, 1, 1), Rect2D(1, 1, 2, 2), Rect2D(4, 4, 5, 5)};
  const MbrVolumeTable table(rects);
  // MBR of all three: [0,5]x[0,5], 3 instants.
  EXPECT_DOUBLE_EQ(table.RunVolume(0, 2), 25.0 * 3.0);
  // MBR of first two: [0,2]x[0,2], 2 instants.
  EXPECT_DOUBLE_EQ(table.RunVolume(0, 1), 4.0 * 2.0);
  EXPECT_DOUBLE_EQ(table.RunVolume(2, 2), 1.0);
}

TEST(MbrVolumeTableTest, RowMatchesDirectRunVolumes) {
  Rng rng(17);
  std::vector<Rect2D> rects;
  for (int i = 0; i < 30; ++i) {
    const double x = rng.UniformDouble(0, 1);
    const double y = rng.UniformDouble(0, 1);
    rects.emplace_back(x, y, x + rng.UniformDouble(0, 0.1),
                       y + rng.UniformDouble(0, 0.1));
  }
  const MbrVolumeTable table(rects);
  std::vector<double> row;
  for (size_t i : {0u, 7u, 29u}) {
    table.RunVolumesEndingAt(i, &row);
    ASSERT_EQ(row.size(), i + 1);
    for (size_t j = 0; j <= i; ++j) {
      EXPECT_NEAR(row[j], table.RunVolume(j, i), 1e-12);
    }
  }
}

}  // namespace
}  // namespace stindex
