#include <gtest/gtest.h>

#include <cmath>

#include "trajectory/fit.h"
#include "util/random.h"

namespace stindex {
namespace {

TEST(FitPolynomialTest, ExactRecoveryOfLowDegreeData) {
  const Polynomial truth({0.3, -0.02, 0.001});
  std::vector<double> values;
  for (int s = 0; s < 40; ++s) {
    values.push_back(truth.Evaluate(static_cast<double>(s)));
  }
  const Polynomial fitted = FitPolynomial(values, 2);
  for (int s = 0; s < 40; ++s) {
    EXPECT_NEAR(fitted.Evaluate(s), values[static_cast<size_t>(s)], 1e-9);
  }
}

TEST(FitPolynomialTest, DegreeClampedToSampleCount) {
  const std::vector<double> values = {1.0, 3.0};
  const Polynomial fitted = FitPolynomial(values, 5);  // only 2 samples
  EXPECT_LE(fitted.Degree(), 1);
  EXPECT_NEAR(fitted.Evaluate(0), 1.0, 1e-9);
  EXPECT_NEAR(fitted.Evaluate(1), 3.0, 1e-9);
}

TEST(FitPolynomialTest, ConstantFitIsMean) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 6.0};
  const Polynomial fitted = FitPolynomial(values, 0);
  EXPECT_NEAR(fitted.Evaluate(17.0), 3.0, 1e-9);
}

std::vector<RawObservation> Observe(const Trajectory& trajectory) {
  std::vector<RawObservation> obs;
  const TimeInterval life = trajectory.Lifetime();
  for (Time t = life.start; t < life.end; ++t) {
    const Rect2D rect = trajectory.RectAt(t);
    RawObservation o;
    o.t = t;
    o.center = rect.Center();
    o.extent_x = rect.Width();
    o.extent_y = rect.Height();
    obs.push_back(o);
  }
  return obs;
}

TEST(FitTrajectoryTest, ExactPolynomialMovementNeedsOneTuple) {
  MovementTuple tuple;
  tuple.interval = TimeInterval(10, 60);
  tuple.center_x = Polynomial({0.2, 0.004, 0.00005});
  tuple.center_y = Polynomial::Linear(0.7, -0.003);
  tuple.extent_x = Polynomial::Constant(0.02);
  tuple.extent_y = Polynomial::Constant(0.03);
  const Trajectory truth(4, {tuple});

  Result<Trajectory> fitted = FitTrajectory(4, Observe(truth));
  ASSERT_TRUE(fitted.ok()) << fitted.status().ToString();
  EXPECT_EQ(fitted.value().tuples().size(), 1u);
  EXPECT_EQ(fitted.value().Lifetime(), truth.Lifetime());
  for (Time t = 10; t < 60; ++t) {
    const Rect2D a = fitted.value().RectAt(t);
    const Rect2D b = truth.RectAt(t);
    EXPECT_NEAR(a.Center().x, b.Center().x, 1e-6);
    EXPECT_NEAR(a.Center().y, b.Center().y, 1e-6);
  }
}

TEST(FitTrajectoryTest, SharpTurnForcesTupleBoundary) {
  // Move right for 30 instants, then up: one quadratic cannot track both
  // within a tight bound.
  std::vector<RawObservation> obs;
  for (int i = 0; i < 30; ++i) {
    RawObservation o;
    o.t = i;
    o.center = Point2D(0.1 + 0.01 * i, 0.2);
    o.extent_x = o.extent_y = 0.01;
    obs.push_back(o);
  }
  for (int i = 0; i < 30; ++i) {
    RawObservation o;
    o.t = 30 + i;
    o.center = Point2D(0.4, 0.2 + 0.01 * i);
    o.extent_x = o.extent_y = 0.01;
    obs.push_back(o);
  }
  FitOptions options;
  options.max_error = 0.002;
  Result<Trajectory> fitted = FitTrajectory(0, obs, options);
  ASSERT_TRUE(fitted.ok());
  EXPECT_GE(fitted.value().tuples().size(), 2u);
  // Error bound holds everywhere.
  for (const RawObservation& o : obs) {
    const Rect2D rect = fitted.value().RectAt(o.t);
    EXPECT_LE(std::abs(rect.Center().x - o.center.x), 0.002 + 1e-9);
    EXPECT_LE(std::abs(rect.Center().y - o.center.y), 0.002 + 1e-9);
  }
}

TEST(FitTrajectoryTest, NoisyWalkHonorsErrorBound) {
  Rng rng(95);
  std::vector<RawObservation> obs;
  double x = 0.5, y = 0.5;
  for (int i = 0; i < 200; ++i) {
    x += rng.UniformDouble(-0.004, 0.004);
    y += rng.UniformDouble(-0.004, 0.004);
    RawObservation o;
    o.t = 100 + i;
    o.center = Point2D(x, y);
    o.extent_x = 0.02 + rng.UniformDouble(-0.001, 0.001);
    o.extent_y = 0.02;
    obs.push_back(o);
  }
  FitOptions options;
  options.max_error = 0.01;
  Result<Trajectory> fitted = FitTrajectory(7, obs, options);
  ASSERT_TRUE(fitted.ok());
  // Compact representation: far fewer tuples than instants.
  EXPECT_LT(fitted.value().tuples().size(), obs.size() / 4);
  for (const RawObservation& o : obs) {
    const Rect2D rect = fitted.value().RectAt(o.t);
    EXPECT_LE(std::abs(rect.Center().x - o.center.x), 0.01 + 1e-9);
    EXPECT_LE(std::abs(rect.Center().y - o.center.y), 0.01 + 1e-9);
    EXPECT_LE(std::abs(rect.Width() - o.extent_x), 0.01 + 1e-9);
  }
}

TEST(FitTrajectoryTest, TighterBoundMeansMoreTuples) {
  Rng rng(96);
  std::vector<RawObservation> obs;
  double x = 0.5;
  for (int i = 0; i < 150; ++i) {
    x += rng.UniformDouble(-0.01, 0.012);
    RawObservation o;
    o.t = i;
    o.center = Point2D(x, 0.4);
    o.extent_x = o.extent_y = 0.01;
    obs.push_back(o);
  }
  FitOptions loose;
  loose.max_error = 0.05;
  FitOptions tight;
  tight.max_error = 0.003;
  Result<Trajectory> coarse = FitTrajectory(0, obs, loose);
  Result<Trajectory> fine = FitTrajectory(0, obs, tight);
  ASSERT_TRUE(coarse.ok() && fine.ok());
  EXPECT_LT(coarse.value().tuples().size(), fine.value().tuples().size());
}

TEST(FitTrajectoryTest, RejectsBadInput) {
  EXPECT_FALSE(FitTrajectory(0, {}).ok());
  std::vector<RawObservation> gap(2);
  gap[0].t = 5;
  gap[1].t = 7;  // not contiguous
  EXPECT_FALSE(FitTrajectory(0, gap).ok());
}

}  // namespace
}  // namespace stindex
