// Property-based equivalence of the parallel split pipeline with the
// serial path: for randomized datasets, every stage — volume curves,
// split distribution, segment materialization — must produce
// element-wise identical output (doubles compared to the last bit) at
// any thread count. Thread counts deliberately exceed the host's core
// count and include a prime, so chunk boundaries land everywhere.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/distribute.h"
#include "core/split_pipeline.h"
#include "core/volume_curve.h"
#include "datagen/clustered_dataset.h"
#include "datagen/random_dataset.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/trace.h"

namespace stindex {
namespace {

constexpr int kThreadCounts[] = {1, 2, 7, 16};

std::vector<Trajectory> RandomObjects(uint64_t seed, size_t n) {
  RandomDatasetConfig config;
  config.num_objects = n;
  config.seed = seed;
  return GenerateRandomDataset(config);
}

void ExpectSegmentsIdentical(const std::vector<SegmentRecord>& expected,
                             const std::vector<SegmentRecord>& got,
                             int threads) {
  ASSERT_EQ(expected.size(), got.size()) << "threads=" << threads;
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected[i].object, got[i].object)
        << "threads=" << threads << " record=" << i;
    // Defaulted operator== compares doubles exactly: bit-identity.
    ASSERT_EQ(expected[i].box, got[i].box)
        << "threads=" << threads << " record=" << i;
  }
}

TEST(ParallelPipelineTest, VolumeCurvesIdenticalAtAnyThreadCount) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    const std::vector<Trajectory> objects = RandomObjects(seed, 300);
    const std::vector<VolumeCurve> serial =
        ComputeVolumeCurves(objects, 32, SplitMethod::kMerge);
    for (int threads : kThreadCounts) {
      const std::vector<VolumeCurve> parallel =
          ComputeVolumeCurves(objects, 32, SplitMethod::kMerge, threads);
      ASSERT_EQ(serial.size(), parallel.size());
      for (size_t i = 0; i < serial.size(); ++i) {
        ASSERT_EQ(serial[i].volume, parallel[i].volume)
            << "seed=" << seed << " threads=" << threads << " object=" << i;
      }
    }
  }
}

TEST(ParallelPipelineTest, DpVolumeCurvesIdenticalAtAnyThreadCount) {
  const std::vector<Trajectory> objects = RandomObjects(17, 60);
  const std::vector<VolumeCurve> serial =
      ComputeVolumeCurves(objects, 16, SplitMethod::kDp);
  for (int threads : kThreadCounts) {
    const std::vector<VolumeCurve> parallel =
        ComputeVolumeCurves(objects, 16, SplitMethod::kDp, threads);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(serial[i].volume, parallel[i].volume);
    }
  }
}

TEST(ParallelPipelineTest, GreedyDistributionIdenticalAtAnyThreadCount) {
  for (uint64_t seed : {21u, 22u}) {
    const std::vector<Trajectory> objects = RandomObjects(seed, 400);
    const std::vector<VolumeCurve> curves =
        ComputeVolumeCurves(objects, 64, SplitMethod::kMerge);
    for (int64_t budget : {0L, 37L, 200L, 600L}) {
      const Distribution serial = DistributeGreedy(curves, budget);
      for (int threads : kThreadCounts) {
        const Distribution parallel =
            DistributeGreedy(curves, budget, threads);
        ASSERT_EQ(serial.splits, parallel.splits)
            << "seed=" << seed << " budget=" << budget
            << " threads=" << threads;
        // Exact: the parallel path must not reassociate any float math.
        ASSERT_EQ(serial.total_volume, parallel.total_volume);
      }
    }
  }
}

TEST(ParallelPipelineTest, LaGreedyDistributionIdenticalAtAnyThreadCount) {
  const std::vector<Trajectory> objects = RandomObjects(31, 400);
  const std::vector<VolumeCurve> curves =
      ComputeVolumeCurves(objects, 64, SplitMethod::kMerge);
  for (int64_t budget : {50L, 200L, 600L}) {
    const Distribution serial = DistributeLAGreedy(curves, budget);
    for (int threads : kThreadCounts) {
      const Distribution parallel =
          DistributeLAGreedy(curves, budget, threads);
      ASSERT_EQ(serial.splits, parallel.splits)
          << "budget=" << budget << " threads=" << threads;
      ASSERT_EQ(serial.total_volume, parallel.total_volume);
    }
  }
}

TEST(ParallelPipelineTest, BuildSegmentsIdenticalAtAnyThreadCount) {
  for (uint64_t seed : {41u, 42u}) {
    const std::vector<Trajectory> objects = RandomObjects(seed, 350);
    const std::vector<VolumeCurve> curves =
        ComputeVolumeCurves(objects, 32, SplitMethod::kMerge);
    const Distribution dist =
        DistributeLAGreedy(curves, static_cast<int64_t>(objects.size()));
    const std::vector<SegmentRecord> serial =
        BuildSegments(objects, dist.splits, SplitMethod::kMerge);
    for (int threads : kThreadCounts) {
      const std::vector<SegmentRecord> parallel =
          BuildSegments(objects, dist.splits, SplitMethod::kMerge, threads);
      ExpectSegmentsIdentical(serial, parallel, threads);
      ASSERT_EQ(TotalVolume(serial), TotalVolume(parallel));
    }
  }
}

TEST(ParallelPipelineTest, BuildSegmentsDpIdenticalAtAnyThreadCount) {
  const std::vector<Trajectory> objects = RandomObjects(47, 80);
  std::vector<int> splits(objects.size());
  Rng rng(48);
  for (int& s : splits) s = static_cast<int>(rng.UniformInt(0, 5));
  const std::vector<SegmentRecord> serial =
      BuildSegments(objects, splits, SplitMethod::kDp);
  for (int threads : kThreadCounts) {
    ExpectSegmentsIdentical(
        serial, BuildSegments(objects, splits, SplitMethod::kDp, threads),
        threads);
  }
}

TEST(ParallelPipelineTest, BuildUnsplitSegmentsIdenticalAtAnyThreadCount) {
  const std::vector<Trajectory> objects = RandomObjects(51, 500);
  const std::vector<SegmentRecord> serial = BuildUnsplitSegments(objects);
  for (int threads : kThreadCounts) {
    ExpectSegmentsIdentical(serial, BuildUnsplitSegments(objects, threads),
                            threads);
  }
}

TEST(ParallelPipelineTest, ClusteredDatasetEndToEndIdentical) {
  // End-to-end over a non-uniform dataset: curves -> distribution ->
  // segments, everything computed at every thread count and compared.
  ClusteredDatasetConfig config;
  config.num_objects = 250;
  config.seed = 61;
  const std::vector<Trajectory> objects = GenerateClusteredDataset(config);

  const std::vector<VolumeCurve> curves =
      ComputeVolumeCurves(objects, 48, SplitMethod::kMerge);
  const Distribution dist = DistributeLAGreedy(curves, 300);
  const std::vector<SegmentRecord> serial =
      BuildSegments(objects, dist.splits, SplitMethod::kMerge);
  const double serial_volume = TotalVolume(serial);

  for (int threads : kThreadCounts) {
    const std::vector<VolumeCurve> p_curves =
        ComputeVolumeCurves(objects, 48, SplitMethod::kMerge, threads);
    const Distribution p_dist = DistributeLAGreedy(p_curves, 300, threads);
    ASSERT_EQ(dist.splits, p_dist.splits) << "threads=" << threads;
    ASSERT_EQ(dist.total_volume, p_dist.total_volume);
    const std::vector<SegmentRecord> parallel =
        BuildSegments(objects, p_dist.splits, SplitMethod::kMerge, threads);
    ExpectSegmentsIdentical(serial, parallel, threads);
    ASSERT_EQ(serial_volume, TotalVolume(parallel));
  }
}

TEST(ParallelPipelineTest, InstrumentedPipelineIdenticalAtAnyThreadCount) {
  // The phase instrumentation (ScopedTimer histograms, event counters)
  // must not perturb pipeline output, and the deterministic metrics must
  // themselves be identical at every thread count. Wall-clock histogram
  // SUMS are run-to-run noise by nature, but their record COUNTS are
  // structural: one reading per phase invocation.
  const std::vector<Trajectory> objects = RandomObjects(81, 300);

  struct Observed {
    std::vector<SegmentRecord> records;
    double total_volume = 0.0;
    uint64_t curves_computed = 0;
    uint64_t segments_built = 0;
    uint64_t curve_timings = 0;
    uint64_t segment_timings = 0;
    uint64_t distribute_timings = 0;
  };
  auto run = [&objects](int threads) {
    MetricRegistry& registry = MetricRegistry::Global();
    registry.ResetForTest();
    Observed observed;
    const std::vector<VolumeCurve> curves =
        ComputeVolumeCurves(objects, 32, SplitMethod::kMerge, threads);
    const Distribution dist = DistributeLAGreedy(curves, 300, threads);
    observed.records =
        BuildSegments(objects, dist.splits, SplitMethod::kMerge, threads);
    observed.total_volume = TotalVolume(observed.records);
    observed.curves_computed =
        registry.GetCounter("pipeline.curves_computed")->Value();
    observed.segments_built =
        registry.GetCounter("pipeline.segments_built")->Value();
    observed.curve_timings =
        registry.GetHistogram("pipeline.curve_seconds")->Value().Count();
    observed.segment_timings =
        registry.GetHistogram("pipeline.segment_seconds")->Value().Count();
    observed.distribute_timings =
        registry.GetHistogram("pipeline.distribute_seconds")->Value().Count();
    return observed;
  };

  const Observed serial = run(1);
  EXPECT_EQ(serial.curves_computed, objects.size());
  EXPECT_EQ(serial.segments_built, serial.records.size());
  EXPECT_EQ(serial.curve_timings, 1u);
  EXPECT_EQ(serial.segment_timings, 1u);
  // LAGreedy runs the greedy prelude through the same public entry point
  // exactly once: one distribute timing, not two.
  EXPECT_EQ(serial.distribute_timings, 1u);

  for (int threads : kThreadCounts) {
    const Observed parallel = run(threads);
    ExpectSegmentsIdentical(serial.records, parallel.records, threads);
    ASSERT_EQ(serial.total_volume, parallel.total_volume)
        << "threads=" << threads;
    EXPECT_EQ(serial.curves_computed, parallel.curves_computed)
        << "threads=" << threads;
    EXPECT_EQ(serial.segments_built, parallel.segments_built)
        << "threads=" << threads;
    EXPECT_EQ(serial.curve_timings, parallel.curve_timings)
        << "threads=" << threads;
    EXPECT_EQ(serial.segment_timings, parallel.segment_timings)
        << "threads=" << threads;
    EXPECT_EQ(serial.distribute_timings, parallel.distribute_timings)
        << "threads=" << threads;
  }
  MetricRegistry::Global().ResetForTest();
}

TEST(ParallelPipelineTest, TracingEnabledPipelineIdenticalAtAnyThreadCount) {
  // Tracing only observes: with a session active (spans recorded from
  // every worker, including the per-chunk ParallelFor spans), the
  // pipeline output must stay byte-identical to the untraced serial run
  // at every thread count.
  const std::vector<Trajectory> objects = RandomObjects(91, 300);

  const std::vector<VolumeCurve> curves =
      ComputeVolumeCurves(objects, 32, SplitMethod::kMerge);
  const Distribution dist = DistributeLAGreedy(curves, 300);
  const std::vector<SegmentRecord> serial =
      BuildSegments(objects, dist.splits, SplitMethod::kMerge);
  const double serial_volume = TotalVolume(serial);

  for (int threads : kThreadCounts) {
    TraceSession::Start();
    const std::vector<VolumeCurve> t_curves =
        ComputeVolumeCurves(objects, 32, SplitMethod::kMerge, threads);
    const Distribution t_dist = DistributeLAGreedy(t_curves, 300, threads);
    const std::vector<SegmentRecord> traced =
        BuildSegments(objects, t_dist.splits, SplitMethod::kMerge, threads);
    TraceSession::Stop();

    ASSERT_EQ(dist.splits, t_dist.splits) << "threads=" << threads;
    ASSERT_EQ(dist.total_volume, t_dist.total_volume);
    ExpectSegmentsIdentical(serial, traced, threads);
    ASSERT_EQ(serial_volume, TotalVolume(traced)) << "threads=" << threads;
    // The capture actually saw the pipeline phases.
    size_t pipeline_spans = 0;
    for (const TraceEvent& event : TraceSession::CollectedEvents()) {
      if (std::strcmp(event.category, "pipeline") == 0) ++pipeline_spans;
    }
    EXPECT_GE(pipeline_spans, 6u) << "threads=" << threads;
  }
}

TEST(ParallelPipelineTest, RandomizedSplitAllocationsManySeeds) {
  // Wider property sweep: random split allocations (not distribution
  // outputs) across several seeds, checking the materialization stage in
  // isolation with per-object split counts hitting the k=0 edge often.
  for (uint64_t seed = 70; seed < 75; ++seed) {
    const std::vector<Trajectory> objects =
        RandomObjects(Rng::DeriveSeed(7, seed), 120);
    std::vector<int> splits(objects.size());
    Rng rng(seed);
    for (int& s : splits) {
      s = rng.Bernoulli(0.4) ? 0 : static_cast<int>(rng.UniformInt(1, 8));
    }
    const std::vector<SegmentRecord> serial =
        BuildSegments(objects, splits, SplitMethod::kMerge);
    for (int threads : kThreadCounts) {
      ExpectSegmentsIdentical(
          serial, BuildSegments(objects, splits, SplitMethod::kMerge, threads),
          threads);
    }
  }
}

}  // namespace
}  // namespace stindex
