#include <gtest/gtest.h>

#include <set>

#include "util/random.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace stindex {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(1234);
  Rng b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformIntWithinBounds) {
  Rng rng(99);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t value = rng.UniformInt(-3, 3);
    EXPECT_GE(value, -3);
    EXPECT_LE(value, 3);
    seen.insert(value);
  }
  // All 7 values should appear over 1000 draws.
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(42, 42), 42);
}

TEST(RngTest, UniformDoubleWithinBounds) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double value = rng.UniformDouble(2.0, 4.0);
    EXPECT_GE(value, 2.0);
    EXPECT_LT(value, 4.0);
    sum += value;
  }
  EXPECT_NEAR(sum / 10000.0, 3.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 10000.0, 0.3, 0.03);
}

TEST(StatusTest, OkByDefault) {
  const Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = Status::InvalidArgument("k must be >= 0");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.ToString(), "InvalidArgument: k must be >= 0");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  const double t0 = watch.ElapsedSeconds();
  EXPECT_GE(t0, 0.0);
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  EXPECT_GE(watch.ElapsedSeconds(), t0);
  watch.Reset();
  EXPECT_LT(watch.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace stindex
