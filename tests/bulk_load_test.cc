#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "rstar/rstar_tree.h"
#include "util/hilbert.h"
#include "util/random.h"

namespace stindex {
namespace {

TEST(HilbertTest, FirstOrderCurveVisitsAllOctants) {
  std::set<uint64_t> indices;
  for (uint32_t x = 0; x < 2; ++x) {
    for (uint32_t y = 0; y < 2; ++y) {
      for (uint32_t z = 0; z < 2; ++z) {
        indices.insert(HilbertIndex3D(x, y, z, 1));
      }
    }
  }
  // A bijection onto 0..7.
  EXPECT_EQ(indices.size(), 8u);
  EXPECT_EQ(*indices.begin(), 0u);
  EXPECT_EQ(*indices.rbegin(), 7u);
}

TEST(HilbertTest, BijectiveOnSmallGrid) {
  const int bits = 3;
  std::set<uint64_t> indices;
  for (uint32_t x = 0; x < 8; ++x) {
    for (uint32_t y = 0; y < 8; ++y) {
      for (uint32_t z = 0; z < 8; ++z) {
        indices.insert(HilbertIndex3D(x, y, z, bits));
      }
    }
  }
  EXPECT_EQ(indices.size(), 512u);
  EXPECT_EQ(*indices.rbegin(), 511u);
}

TEST(HilbertTest, CurveIsContinuous) {
  // Successive indices must be adjacent grid cells (the defining
  // property of a Hilbert curve).
  const int bits = 4;
  const uint32_t side = 1u << bits;
  std::vector<std::array<uint32_t, 3>> by_index(side * side * side);
  for (uint32_t x = 0; x < side; ++x) {
    for (uint32_t y = 0; y < side; ++y) {
      for (uint32_t z = 0; z < side; ++z) {
        by_index[HilbertIndex3D(x, y, z, bits)] = {x, y, z};
      }
    }
  }
  for (size_t i = 1; i < by_index.size(); ++i) {
    int manhattan = 0;
    for (int d = 0; d < 3; ++d) {
      manhattan += std::abs(static_cast<int>(by_index[i][d]) -
                            static_cast<int>(by_index[i - 1][d]));
    }
    EXPECT_EQ(manhattan, 1) << "discontinuity at index " << i;
  }
}

Box3D RandomBox(Rng& rng, double max_extent = 0.03) {
  const double x = rng.UniformDouble(0, 1);
  const double y = rng.UniformDouble(0, 1);
  const double t = rng.UniformDouble(0, 1);
  return Box3D(x, y, t, x + rng.UniformDouble(0, max_extent),
               y + rng.UniformDouble(0, max_extent),
               t + rng.UniformDouble(0, max_extent));
}

std::vector<DataId> BruteForceSearch(const std::vector<Box3D>& boxes,
                                     const Box3D& query) {
  std::vector<DataId> hits;
  for (size_t i = 0; i < boxes.size(); ++i) {
    if (boxes[i].Intersects(query)) hits.push_back(i);
  }
  return hits;
}

class BulkLoadTest : public ::testing::TestWithParam<PackingMethod> {};

TEST_P(BulkLoadTest, EquivalentToLinearScan) {
  Rng rng(41);
  std::vector<Box3D> boxes;
  for (size_t i = 0; i < 1200; ++i) boxes.push_back(RandomBox(rng));
  std::unique_ptr<RStarTree> tree = RStarTree::BulkLoad(boxes, GetParam());
  EXPECT_EQ(tree->Size(), boxes.size());
  tree->CheckInvariants();
  for (int q = 0; q < 40; ++q) {
    const Box3D query = RandomBox(rng, 0.2);
    std::vector<DataId> results;
    tree->Search(query, &results);
    std::sort(results.begin(), results.end());
    EXPECT_EQ(results, BruteForceSearch(boxes, query));
  }
}

TEST_P(BulkLoadTest, PacksTighterThanIncrementalBuild) {
  Rng rng(42);
  std::vector<Box3D> boxes;
  for (size_t i = 0; i < 3000; ++i) boxes.push_back(RandomBox(rng));
  std::unique_ptr<RStarTree> packed = RStarTree::BulkLoad(boxes, GetParam());
  RStarTree incremental;
  for (size_t i = 0; i < boxes.size(); ++i) {
    incremental.Insert(boxes[i], static_cast<DataId>(i));
  }
  // ~100% leaf fill must use clearly fewer pages than ~70% fill.
  EXPECT_LT(packed->PageCount(), incremental.PageCount());
}

TEST_P(BulkLoadTest, EdgeCardinalities) {
  Rng rng(43);
  for (size_t n : {0u, 1u, 49u, 50u, 51u, 70u, 100u, 2501u}) {
    std::vector<Box3D> boxes;
    for (size_t i = 0; i < n; ++i) boxes.push_back(RandomBox(rng));
    std::unique_ptr<RStarTree> tree = RStarTree::BulkLoad(boxes, GetParam());
    EXPECT_EQ(tree->Size(), n);
    tree->CheckInvariants();
    if (n == 0) continue;
    std::vector<DataId> results;
    tree->Search(Box3D(-1, -1, -1, 2, 2, 2), &results);
    EXPECT_EQ(results.size(), n) << "n=" << n;
  }
}

TEST_P(BulkLoadTest, SupportsIncrementalInsertAfterLoad) {
  Rng rng(44);
  std::vector<Box3D> boxes;
  for (size_t i = 0; i < 400; ++i) boxes.push_back(RandomBox(rng));
  std::unique_ptr<RStarTree> tree = RStarTree::BulkLoad(boxes, GetParam());
  for (size_t i = 400; i < 600; ++i) {
    boxes.push_back(RandomBox(rng));
    tree->Insert(boxes.back(), static_cast<DataId>(i));
  }
  tree->CheckInvariants();
  for (int q = 0; q < 20; ++q) {
    const Box3D query = RandomBox(rng, 0.25);
    std::vector<DataId> results;
    tree->Search(query, &results);
    std::sort(results.begin(), results.end());
    EXPECT_EQ(results, BruteForceSearch(boxes, query));
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, BulkLoadTest,
                         ::testing::Values(PackingMethod::kStr,
                                           PackingMethod::kHilbert));

}  // namespace
}  // namespace stindex
