// Fault-injection tests for the storage stack: every injected I/O error
// must surface as a Status or a CHECK naming the offending page id —
// never as silent corruption. FaultInjectingBackend wraps a
// MemoryPageBackend, so the faults are deterministic and the tests run
// without touching the filesystem.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>

#include "storage/buffer_pool.h"
#include "storage/fault_backend.h"
#include "storage/file_backend.h"
#include "storage/page_backend.h"
#include "storage/page_codec.h"

namespace stindex {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// One uint64 payload per page; enough to detect corruption and identity.
class TestPage : public Page {
 public:
  explicit TestPage(uint64_t value) : value_(value) {}
  uint64_t value() const { return value_; }

 private:
  uint64_t value_;
};

class TestCodec : public PageCodec {
 public:
  void Encode(const Page& page, uint8_t* out) const override {
    PageWriter writer = PayloadWriter(out);
    writer.Write<uint64_t>(static_cast<const TestPage&>(page).value());
    SealPage(out, PageKind::kTest);
  }

  Result<std::unique_ptr<Page>> Decode(const uint8_t* page,
                                       PageId id) const override {
    Result<PageReader> payload = OpenPagePayload(page, PageKind::kTest, id);
    if (!payload.ok()) return payload.status();
    PageReader reader = payload.value();
    uint64_t value = 0;
    if (!reader.Read(&value)) {
      return Status::InvalidArgument("page " + std::to_string(id) +
                                     ": short test page");
    }
    return Result<std::unique_ptr<Page>>(std::make_unique<TestPage>(value));
  }
};

// Seals a TestPage with `value` into slot `id` of the wrapped backend.
void WriteTestPage(PageBackend* backend, PageId id, uint64_t value) {
  uint8_t buffer[kPageSize];
  TestCodec().Encode(TestPage(value), buffer);
  ASSERT_TRUE(backend->Write(id, buffer).ok());
}

std::unique_ptr<FaultInjectingBackend> MakeFaulty(
    FaultInjectingBackend::Faults faults, int pages = 3) {
  auto memory = std::make_unique<MemoryPageBackend>();
  for (int i = 0; i < pages; ++i) {
    WriteTestPage(memory.get(), static_cast<PageId>(i),
                  1000 + static_cast<uint64_t>(i));
  }
  return std::make_unique<FaultInjectingBackend>(std::move(memory), faults);
}

TEST(FaultBackendTest, FailedReadSurfacesStatusWithPageId) {
  FaultInjectingBackend::Faults faults;
  faults.fail_read_at = 1;
  std::unique_ptr<FaultInjectingBackend> backend = MakeFaulty(faults);
  uint8_t buffer[kPageSize];
  const Status status = backend->Read(2, buffer);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_TRUE(Contains(status.message(), "page 2")) << status.ToString();
  EXPECT_TRUE(Contains(status.message(), "injected read failure"));
}

TEST(FaultBackendTest, FaultsDisarmAfterFiring) {
  FaultInjectingBackend::Faults faults;
  faults.fail_read_at = 1;
  std::unique_ptr<FaultInjectingBackend> backend = MakeFaulty(faults);
  uint8_t buffer[kPageSize];
  EXPECT_FALSE(backend->Read(0, buffer).ok());
  EXPECT_TRUE(backend->Read(0, buffer).ok());  // the fault fired once
  EXPECT_EQ(backend->reads(), 2u);
}

TEST(FaultBackendTest, ShortReadSurfacesStatusWithPageId) {
  FaultInjectingBackend::Faults faults;
  faults.short_read_at = 2;
  std::unique_ptr<FaultInjectingBackend> backend = MakeFaulty(faults);
  uint8_t buffer[kPageSize];
  EXPECT_TRUE(backend->Read(0, buffer).ok());
  const Status status = backend->Read(1, buffer);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_TRUE(Contains(status.message(), "page 1")) << status.ToString();
  EXPECT_TRUE(Contains(status.message(), "short read"));
}

TEST(FaultBackendTest, FailedWriteSurfacesStatusWithPageId) {
  FaultInjectingBackend::Faults faults;
  faults.fail_write_at = 1;
  auto backend = std::make_unique<FaultInjectingBackend>(
      std::make_unique<MemoryPageBackend>(), faults);
  uint8_t buffer[kPageSize];
  TestCodec().Encode(TestPage(7), buffer);
  const Status status = backend->Write(4, buffer);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_TRUE(Contains(status.message(), "page 4")) << status.ToString();
  EXPECT_TRUE(Contains(status.message(), "injected write failure"));
  // Nothing was written, so the slot stays unallocated.
  EXPECT_FALSE(backend->IsAllocated(4));
}

TEST(FaultBackendTest, BitFlipIsSilentAtBackendLevel) {
  // The corrupting fault reports success — only the checksum layer can
  // catch it, which the BufferPool death test below proves it does.
  FaultInjectingBackend::Faults faults;
  faults.corrupt_read_at = 1;
  faults.corrupt_bit = (kPageEnvelopeBytes + 3) * 8 + 5;  // payload byte
  std::unique_ptr<FaultInjectingBackend> backend = MakeFaulty(faults);
  uint8_t corrupt[kPageSize];
  uint8_t clean[kPageSize];
  ASSERT_TRUE(backend->Read(0, corrupt).ok());
  ASSERT_TRUE(backend->Read(0, clean).ok());
  EXPECT_NE(std::memcmp(corrupt, clean, kPageSize), 0);
  EXPECT_FALSE(OpenPagePayload(corrupt, PageKind::kTest, 0).ok());
  EXPECT_TRUE(OpenPagePayload(clean, PageKind::kTest, 0).ok());
}

TEST(FaultPoolDeathTest, FetchDiesOnInjectedReadFailureNamingPage) {
  FaultInjectingBackend::Faults faults;
  faults.fail_read_at = 1;
  std::unique_ptr<FaultInjectingBackend> backend = MakeFaulty(faults);
  TestCodec codec;
  BufferPool pool(backend.get(), &codec, 4);
  EXPECT_DEATH(pool.Fetch(2), "read of page 2 failed.*injected read failure");
}

TEST(FaultPoolDeathTest, FetchDiesOnShortReadNamingPage) {
  FaultInjectingBackend::Faults faults;
  faults.short_read_at = 1;
  std::unique_ptr<FaultInjectingBackend> backend = MakeFaulty(faults);
  TestCodec codec;
  BufferPool pool(backend.get(), &codec, 4);
  EXPECT_DEATH(pool.Fetch(1), "read of page 1 failed.*short read");
}

TEST(FaultPoolDeathTest, FetchDiesOnBitFlipViaChecksum) {
  // The backend reports success for the corrupted page; the codec's
  // envelope checksum must reject it before a garbage node is served.
  FaultInjectingBackend::Faults faults;
  faults.corrupt_read_at = 1;
  faults.corrupt_bit = (kPageEnvelopeBytes + 1) * 8;
  std::unique_ptr<FaultInjectingBackend> backend = MakeFaulty(faults);
  TestCodec codec;
  BufferPool pool(backend.get(), &codec, 4);
  EXPECT_DEATH(pool.Fetch(0), "decode of page 0 failed.*checksum mismatch");
}

TEST(FaultPoolTest, EvictionWriteFailureSurfacesInPut) {
  FaultInjectingBackend::Faults faults;
  faults.fail_write_at = 1;
  auto backend = std::make_unique<FaultInjectingBackend>(
      std::make_unique<MemoryPageBackend>(), faults);
  TestCodec codec;
  BufferPool pool(backend.get(), &codec, /*capacity=*/1);
  ASSERT_TRUE(pool.Put(0, std::make_unique<TestPage>(10)).ok());
  // Inserting page 1 evicts dirty page 0, whose write-back fails.
  const Status status = pool.Put(1, std::make_unique<TestPage>(11));
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_TRUE(Contains(status.message(), "write-back of page 0"))
      << status.ToString();
  EXPECT_TRUE(Contains(status.message(), "injected write failure"));
  // The victim stayed resident and dirty; the fault disarmed, so the
  // flush-on-destruction retry persists it.
  EXPECT_EQ(pool.DirtyPages(), 1u);
}

TEST(FaultPoolTest, FlushAllWriteFailureSurfacesStatusAndRetries) {
  FaultInjectingBackend::Faults faults;
  faults.fail_write_at = 1;
  auto backend = std::make_unique<FaultInjectingBackend>(
      std::make_unique<MemoryPageBackend>(), faults);
  TestCodec codec;
  BufferPool pool(backend.get(), &codec, 4);
  ASSERT_TRUE(pool.Put(5, std::make_unique<TestPage>(55)).ok());
  const Status status = pool.FlushAll();
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_TRUE(Contains(status.message(), "write-back of page 5"))
      << status.ToString();
  EXPECT_EQ(pool.DirtyPages(), 1u);  // still dirty after the failure
  // The fault disarmed: the retry succeeds and the data is intact.
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(pool.DirtyPages(), 0u);
  uint8_t buffer[kPageSize];
  ASSERT_TRUE(backend->Read(5, buffer).ok());
  Result<std::unique_ptr<Page>> decoded = codec.Decode(buffer, 5);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(static_cast<const TestPage*>(decoded.value().get())->value(), 55u);
}

TEST(FaultBackendTest, CrashTriggerFiresAtNthMutationAndLatches) {
  FaultInjectingBackend::Faults faults;
  faults.crash_at_write = 3;
  std::unique_ptr<FaultInjectingBackend> backend = MakeFaulty(faults);
  uint8_t buffer[kPageSize];
  TestCodec().Encode(TestPage(7), buffer);

  // Write, Sync and Free share the mutation counter.
  EXPECT_TRUE(backend->Write(5, buffer).ok());  // mutation 1
  EXPECT_TRUE(backend->Sync().ok());            // mutation 2
  EXPECT_FALSE(backend->crashed());
  const Status crash = backend->Free(0);        // mutation 3: the crash
  EXPECT_EQ(crash.code(), StatusCode::kIoError);
  EXPECT_TRUE(Contains(crash.message(), "injected crash point (mutation 3)"))
      << crash.ToString();
  EXPECT_TRUE(backend->crashed());
  EXPECT_EQ(backend->mutations(), 3u);

  // The backend is dead: every later call fails, reads included, and the
  // mutation counter stops advancing.
  EXPECT_EQ(backend->Write(6, buffer).code(), StatusCode::kIoError);
  EXPECT_EQ(backend->Sync().code(), StatusCode::kIoError);
  EXPECT_EQ(backend->Free(1).code(), StatusCode::kIoError);
  const Status read = backend->Read(0, buffer);
  EXPECT_EQ(read.code(), StatusCode::kIoError);
  EXPECT_TRUE(Contains(read.message(), "after injected crash"))
      << read.ToString();
  EXPECT_EQ(backend->mutations(), 3u);

  // State from before the crash survives in the wrapped backend (it is
  // what a recovery re-open would see); the doomed free never happened.
  EXPECT_TRUE(backend->wrapped()->IsAllocated(5));
  EXPECT_TRUE(backend->wrapped()->IsAllocated(0));
}

TEST(FaultBackendTest, CrashOnFirstMutationKillsEverything) {
  FaultInjectingBackend::Faults faults;
  faults.crash_at_write = 1;
  std::unique_ptr<FaultInjectingBackend> backend = MakeFaulty(faults);
  EXPECT_EQ(backend->Sync().code(), StatusCode::kIoError);
  EXPECT_TRUE(backend->crashed());
  uint8_t buffer[kPageSize];
  EXPECT_EQ(backend->Read(0, buffer).code(), StatusCode::kIoError);
}

TEST(FaultBackendTest, AbandonedFileKeepsOnlySyncedState) {
  const std::string path =
      ::testing::TempDir() + "/fault_abandon.stpages";
  Result<std::unique_ptr<FilePageBackend>> created =
      FilePageBackend::Create(path);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<FilePageBackend> file = std::move(created).value();

  uint8_t buffer[kPageSize];
  TestCodec().Encode(TestPage(1), buffer);
  ASSERT_TRUE(file->Write(0, buffer).ok());
  ASSERT_TRUE(file->Sync().ok());  // page 0 and its bitmap are durable
  TestCodec().Encode(TestPage(2), buffer);
  ASSERT_TRUE(file->Write(1, buffer).ok());  // never synced

  // Abandon closes the fd without the destructor's sync backstop — the
  // file now holds exactly what a killed process left behind — and every
  // later call must fail instead of quietly reviving the backend.
  file->Abandon();
  EXPECT_EQ(file->Write(2, buffer).code(), StatusCode::kIoError);
  EXPECT_EQ(file->Sync().code(), StatusCode::kIoError);
  EXPECT_EQ(file->Read(0, buffer).code(), StatusCode::kIoError);
  file.reset();

  // Reopen: the synced page is visible; the unsynced write is not
  // allocated because its bitmap update died with the process.
  Result<std::unique_ptr<FilePageBackend>> reopened =
      FilePageBackend::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(reopened.value()->IsAllocated(0));
  EXPECT_FALSE(reopened.value()->IsAllocated(1));
  ASSERT_TRUE(reopened.value()->Read(0, buffer).ok());
  Result<std::unique_ptr<Page>> decoded = TestCodec().Decode(buffer, 0);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(static_cast<const TestPage*>(decoded.value().get())->value(), 1u);

  std::remove(path.c_str());
}

TEST(FaultPoolTest, WriteFaultDoesNotCorruptOtherPages) {
  FaultInjectingBackend::Faults faults;
  faults.fail_write_at = 2;
  auto backend = std::make_unique<FaultInjectingBackend>(
      std::make_unique<MemoryPageBackend>(), faults);
  TestCodec codec;
  {
    BufferPool pool(backend.get(), &codec, 8);
    for (PageId id = 0; id < 4; ++id) {
      ASSERT_TRUE(pool.Put(id, std::make_unique<TestPage>(100 + id)).ok());
    }
    EXPECT_FALSE(pool.FlushAll().ok());  // page 1's write fails
    ASSERT_TRUE(pool.FlushAll().ok());   // retry after disarm
  }
  for (PageId id = 0; id < 4; ++id) {
    uint8_t buffer[kPageSize];
    ASSERT_TRUE(backend->Read(id, buffer).ok());
    Result<std::unique_ptr<Page>> decoded = codec.Decode(buffer, id);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(static_cast<const TestPage*>(decoded.value().get())->value(),
              100u + id);
  }
}

}  // namespace
}  // namespace stindex
