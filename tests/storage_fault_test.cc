// Fault-injection tests for the storage stack: every injected I/O error
// must surface as a Status or a CHECK naming the offending page id —
// never as silent corruption. FaultInjectingBackend wraps a
// MemoryPageBackend, so the faults are deterministic and the tests run
// without touching the filesystem.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <utility>

#include "storage/buffer_pool.h"
#include "storage/fault_backend.h"
#include "storage/page_backend.h"
#include "storage/page_codec.h"

namespace stindex {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// One uint64 payload per page; enough to detect corruption and identity.
class TestPage : public Page {
 public:
  explicit TestPage(uint64_t value) : value_(value) {}
  uint64_t value() const { return value_; }

 private:
  uint64_t value_;
};

class TestCodec : public PageCodec {
 public:
  void Encode(const Page& page, uint8_t* out) const override {
    PageWriter writer = PayloadWriter(out);
    writer.Write<uint64_t>(static_cast<const TestPage&>(page).value());
    SealPage(out, PageKind::kTest);
  }

  Result<std::unique_ptr<Page>> Decode(const uint8_t* page,
                                       PageId id) const override {
    Result<PageReader> payload = OpenPagePayload(page, PageKind::kTest, id);
    if (!payload.ok()) return payload.status();
    PageReader reader = payload.value();
    uint64_t value = 0;
    if (!reader.Read(&value)) {
      return Status::InvalidArgument("page " + std::to_string(id) +
                                     ": short test page");
    }
    return Result<std::unique_ptr<Page>>(std::make_unique<TestPage>(value));
  }
};

// Seals a TestPage with `value` into slot `id` of the wrapped backend.
void WriteTestPage(PageBackend* backend, PageId id, uint64_t value) {
  uint8_t buffer[kPageSize];
  TestCodec().Encode(TestPage(value), buffer);
  ASSERT_TRUE(backend->Write(id, buffer).ok());
}

std::unique_ptr<FaultInjectingBackend> MakeFaulty(
    FaultInjectingBackend::Faults faults, int pages = 3) {
  auto memory = std::make_unique<MemoryPageBackend>();
  for (int i = 0; i < pages; ++i) {
    WriteTestPage(memory.get(), static_cast<PageId>(i),
                  1000 + static_cast<uint64_t>(i));
  }
  return std::make_unique<FaultInjectingBackend>(std::move(memory), faults);
}

TEST(FaultBackendTest, FailedReadSurfacesStatusWithPageId) {
  FaultInjectingBackend::Faults faults;
  faults.fail_read_at = 1;
  std::unique_ptr<FaultInjectingBackend> backend = MakeFaulty(faults);
  uint8_t buffer[kPageSize];
  const Status status = backend->Read(2, buffer);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_TRUE(Contains(status.message(), "page 2")) << status.ToString();
  EXPECT_TRUE(Contains(status.message(), "injected read failure"));
}

TEST(FaultBackendTest, FaultsDisarmAfterFiring) {
  FaultInjectingBackend::Faults faults;
  faults.fail_read_at = 1;
  std::unique_ptr<FaultInjectingBackend> backend = MakeFaulty(faults);
  uint8_t buffer[kPageSize];
  EXPECT_FALSE(backend->Read(0, buffer).ok());
  EXPECT_TRUE(backend->Read(0, buffer).ok());  // the fault fired once
  EXPECT_EQ(backend->reads(), 2u);
}

TEST(FaultBackendTest, ShortReadSurfacesStatusWithPageId) {
  FaultInjectingBackend::Faults faults;
  faults.short_read_at = 2;
  std::unique_ptr<FaultInjectingBackend> backend = MakeFaulty(faults);
  uint8_t buffer[kPageSize];
  EXPECT_TRUE(backend->Read(0, buffer).ok());
  const Status status = backend->Read(1, buffer);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_TRUE(Contains(status.message(), "page 1")) << status.ToString();
  EXPECT_TRUE(Contains(status.message(), "short read"));
}

TEST(FaultBackendTest, FailedWriteSurfacesStatusWithPageId) {
  FaultInjectingBackend::Faults faults;
  faults.fail_write_at = 1;
  auto backend = std::make_unique<FaultInjectingBackend>(
      std::make_unique<MemoryPageBackend>(), faults);
  uint8_t buffer[kPageSize];
  TestCodec().Encode(TestPage(7), buffer);
  const Status status = backend->Write(4, buffer);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_TRUE(Contains(status.message(), "page 4")) << status.ToString();
  EXPECT_TRUE(Contains(status.message(), "injected write failure"));
  // Nothing was written, so the slot stays unallocated.
  EXPECT_FALSE(backend->IsAllocated(4));
}

TEST(FaultBackendTest, BitFlipIsSilentAtBackendLevel) {
  // The corrupting fault reports success — only the checksum layer can
  // catch it, which the BufferPool death test below proves it does.
  FaultInjectingBackend::Faults faults;
  faults.corrupt_read_at = 1;
  faults.corrupt_bit = (kPageEnvelopeBytes + 3) * 8 + 5;  // payload byte
  std::unique_ptr<FaultInjectingBackend> backend = MakeFaulty(faults);
  uint8_t corrupt[kPageSize];
  uint8_t clean[kPageSize];
  ASSERT_TRUE(backend->Read(0, corrupt).ok());
  ASSERT_TRUE(backend->Read(0, clean).ok());
  EXPECT_NE(std::memcmp(corrupt, clean, kPageSize), 0);
  EXPECT_FALSE(OpenPagePayload(corrupt, PageKind::kTest, 0).ok());
  EXPECT_TRUE(OpenPagePayload(clean, PageKind::kTest, 0).ok());
}

TEST(FaultPoolDeathTest, FetchDiesOnInjectedReadFailureNamingPage) {
  FaultInjectingBackend::Faults faults;
  faults.fail_read_at = 1;
  std::unique_ptr<FaultInjectingBackend> backend = MakeFaulty(faults);
  TestCodec codec;
  BufferPool pool(backend.get(), &codec, 4);
  EXPECT_DEATH(pool.Fetch(2), "read of page 2 failed.*injected read failure");
}

TEST(FaultPoolDeathTest, FetchDiesOnShortReadNamingPage) {
  FaultInjectingBackend::Faults faults;
  faults.short_read_at = 1;
  std::unique_ptr<FaultInjectingBackend> backend = MakeFaulty(faults);
  TestCodec codec;
  BufferPool pool(backend.get(), &codec, 4);
  EXPECT_DEATH(pool.Fetch(1), "read of page 1 failed.*short read");
}

TEST(FaultPoolDeathTest, FetchDiesOnBitFlipViaChecksum) {
  // The backend reports success for the corrupted page; the codec's
  // envelope checksum must reject it before a garbage node is served.
  FaultInjectingBackend::Faults faults;
  faults.corrupt_read_at = 1;
  faults.corrupt_bit = (kPageEnvelopeBytes + 1) * 8;
  std::unique_ptr<FaultInjectingBackend> backend = MakeFaulty(faults);
  TestCodec codec;
  BufferPool pool(backend.get(), &codec, 4);
  EXPECT_DEATH(pool.Fetch(0), "decode of page 0 failed.*checksum mismatch");
}

TEST(FaultPoolTest, EvictionWriteFailureSurfacesInPut) {
  FaultInjectingBackend::Faults faults;
  faults.fail_write_at = 1;
  auto backend = std::make_unique<FaultInjectingBackend>(
      std::make_unique<MemoryPageBackend>(), faults);
  TestCodec codec;
  BufferPool pool(backend.get(), &codec, /*capacity=*/1);
  ASSERT_TRUE(pool.Put(0, std::make_unique<TestPage>(10)).ok());
  // Inserting page 1 evicts dirty page 0, whose write-back fails.
  const Status status = pool.Put(1, std::make_unique<TestPage>(11));
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_TRUE(Contains(status.message(), "write-back of page 0"))
      << status.ToString();
  EXPECT_TRUE(Contains(status.message(), "injected write failure"));
  // The victim stayed resident and dirty; the fault disarmed, so the
  // flush-on-destruction retry persists it.
  EXPECT_EQ(pool.DirtyPages(), 1u);
}

TEST(FaultPoolTest, FlushAllWriteFailureSurfacesStatusAndRetries) {
  FaultInjectingBackend::Faults faults;
  faults.fail_write_at = 1;
  auto backend = std::make_unique<FaultInjectingBackend>(
      std::make_unique<MemoryPageBackend>(), faults);
  TestCodec codec;
  BufferPool pool(backend.get(), &codec, 4);
  ASSERT_TRUE(pool.Put(5, std::make_unique<TestPage>(55)).ok());
  const Status status = pool.FlushAll();
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_TRUE(Contains(status.message(), "write-back of page 5"))
      << status.ToString();
  EXPECT_EQ(pool.DirtyPages(), 1u);  // still dirty after the failure
  // The fault disarmed: the retry succeeds and the data is intact.
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(pool.DirtyPages(), 0u);
  uint8_t buffer[kPageSize];
  ASSERT_TRUE(backend->Read(5, buffer).ok());
  Result<std::unique_ptr<Page>> decoded = codec.Decode(buffer, 5);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(static_cast<const TestPage*>(decoded.value().get())->value(), 55u);
}

TEST(FaultPoolTest, WriteFaultDoesNotCorruptOtherPages) {
  FaultInjectingBackend::Faults faults;
  faults.fail_write_at = 2;
  auto backend = std::make_unique<FaultInjectingBackend>(
      std::make_unique<MemoryPageBackend>(), faults);
  TestCodec codec;
  {
    BufferPool pool(backend.get(), &codec, 8);
    for (PageId id = 0; id < 4; ++id) {
      ASSERT_TRUE(pool.Put(id, std::make_unique<TestPage>(100 + id)).ok());
    }
    EXPECT_FALSE(pool.FlushAll().ok());  // page 1's write fails
    ASSERT_TRUE(pool.FlushAll().ok());   // retry after disarm
  }
  for (PageId id = 0; id < 4; ++id) {
    uint8_t buffer[kPageSize];
    ASSERT_TRUE(backend->Read(id, buffer).ok());
    Result<std::unique_ptr<Page>> decoded = codec.Decode(buffer, id);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(static_cast<const TestPage*>(decoded.value().get())->value(),
              100u + id);
  }
}

}  // namespace
}  // namespace stindex
