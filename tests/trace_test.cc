#include "util/trace.h"

#include <atomic>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "util/metrics.h"

namespace stindex {
namespace {

// Counts events in the capture matching a (category, name, phase).
size_t CountEvents(const std::vector<TraceEvent>& events, const char* category,
                   const char* name, char phase) {
  size_t count = 0;
  for (const TraceEvent& event : events) {
    if (event.phase == phase && std::strcmp(event.category, category) == 0 &&
        std::strcmp(event.name, name) == 0) {
      ++count;
    }
  }
  return count;
}

TEST(TraceTest, DisabledByDefaultAndSpansAreNoOps) {
  ASSERT_FALSE(TraceSession::IsActive());
  EXPECT_FALSE(TracingActive());
  {
    TraceSpan span("test", "noop");
    span.Arg("k", static_cast<int64_t>(1));
  }
  // Nothing to observe beyond "does not crash / does not arm tracing".
  EXPECT_FALSE(TracingActive());
}

TEST(TraceTest, SpanNestingProducesBalancedOrderedPairs) {
  TraceSession::Start();
  {
    TraceSpan outer("test", "outer");
    outer.Arg("objects", static_cast<int64_t>(7));
    {
      STINDEX_TRACE_SPAN("test", "inner");
    }
  }
  TraceSession::Stop();
  const std::vector<TraceEvent>& events = TraceSession::CollectedEvents();
  ASSERT_EQ(events.size(), 4u);

  // Per-thread chronological order: B(outer) B(inner) E(inner) E(outer).
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_EQ(events[1].phase, 'B');
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_EQ(events[2].phase, 'E');
  EXPECT_STREQ(events[2].name, "inner");
  EXPECT_EQ(events[3].phase, 'E');
  EXPECT_STREQ(events[3].name, "outer");
  for (const TraceEvent& event : events) {
    EXPECT_STREQ(event.category, "test");
    EXPECT_EQ(event.tid, events[0].tid);
  }
  // Timestamps never run backwards within the thread.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
  }
  // Args ride on the closing event.
  EXPECT_EQ(events[3].num_args, 1u);
  EXPECT_STREQ(events[3].args[0].key, "objects");
  EXPECT_EQ(events[3].args[0].kind, TraceEvent::Arg::Kind::kInt);
  EXPECT_EQ(events[3].args[0].int_value, 7);
  EXPECT_EQ(TraceSession::DroppedEvents(), 0u);
}

TEST(TraceTest, ArgKindsRoundTrip) {
  TraceSession::Start();
  {
    TraceSpan span("test", "args");
    span.Arg("ratio", 0.25).Arg("label", "hello");
  }
  TraceSession::Stop();
  const std::vector<TraceEvent>& events = TraceSession::CollectedEvents();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent& end = events[1];
  ASSERT_EQ(end.num_args, 2u);
  EXPECT_EQ(end.args[0].kind, TraceEvent::Arg::Kind::kDouble);
  EXPECT_DOUBLE_EQ(end.args[0].double_value, 0.25);
  EXPECT_EQ(end.args[1].kind, TraceEvent::Arg::Kind::kString);
  EXPECT_STREQ(end.args[1].string_value, "hello");
}

TEST(TraceTest, RingWraparoundDropsOldestAndCountsDrops) {
  MetricRegistry& registry = MetricRegistry::Global();
  const uint64_t dropped_before =
      registry.GetCounter("trace.dropped_events")->Value();

  TraceSessionConfig config;
  config.events_per_thread = 8;  // tiny ring: 4 spans fit
  TraceSession::Start(config);
  constexpr int kSpans = 50;  // 100 events >> 8
  for (int i = 0; i < kSpans; ++i) {
    STINDEX_TRACE_SPAN("test", "wrap");
  }
  TraceSession::Stop();

  const std::vector<TraceEvent>& events = TraceSession::CollectedEvents();
  EXPECT_EQ(events.size(), 8u);
  EXPECT_EQ(TraceSession::DroppedEvents(), 2u * kSpans - 8u);
  // Drop-oldest: the retained tail ends with the final span's 'E'.
  EXPECT_EQ(events.back().phase, 'E');
  // Kept events alternate B/E (spans are sequential, not nested).
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].phase, i % 2 == 0 ? 'B' : 'E');
  }
  EXPECT_EQ(registry.GetCounter("trace.dropped_events")->Value(),
            dropped_before + 2u * kSpans - 8u);
}

TEST(TraceTest, CollectsEventsFromMultipleThreads) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 25;
  TraceSession::Start();
  {
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([] {
        for (int i = 0; i < kSpansPerThread; ++i) {
          TraceSpan span("test", "worker");
          span.Arg("i", static_cast<int64_t>(i));
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  }
  TraceSession::Stop();

  const std::vector<TraceEvent>& events = TraceSession::CollectedEvents();
  EXPECT_EQ(CountEvents(events, "test", "worker", 'B'),
            static_cast<size_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(CountEvents(events, "test", "worker", 'E'),
            static_cast<size_t>(kThreads) * kSpansPerThread);

  std::set<uint32_t> tids;
  for (const TraceEvent& event : events) tids.insert(event.tid);
  EXPECT_EQ(tids.size(), static_cast<size_t>(kThreads));
  // Within each thread, timestamps are chronological in the drained list.
  for (const uint32_t tid : tids) {
    uint64_t last = 0;
    for (const TraceEvent& event : events) {
      if (event.tid != tid) continue;
      EXPECT_GE(event.ts_ns, last);
      last = event.ts_ns;
    }
  }
}

TEST(TraceTest, StopIsIdempotentAndSpansAfterStopAreIgnored)
{
  TraceSession::Start();
  { STINDEX_TRACE_SPAN("test", "once"); }
  TraceSession::Stop();
  const size_t collected = TraceSession::CollectedEvents().size();
  { STINDEX_TRACE_SPAN("test", "late"); }
  TraceSession::Stop();  // second Stop: no-op
  EXPECT_EQ(TraceSession::CollectedEvents().size(), collected);
  EXPECT_EQ(CountEvents(TraceSession::CollectedEvents(), "test", "late", 'B'),
            0u);
}

TEST(TraceTest, ExportChromeTraceIsWellFormed) {
  MetricRegistry::Global().GetCounter("test.trace.export")->Add(3);
  TraceSession::Start();
  {
    TraceSpan span("test", "export");
    span.Arg("n", static_cast<int64_t>(5)).Arg("what", "x");
  }
  TraceSession::Stop();
  const std::string json = TraceSession::ExportChromeTrace();
  // Structural markers rather than a full JSON parse: the python
  // validator (scripts/validate_trace.py) does the strict pass in CI.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
  // Counter tracks sampled from the registry.
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("test.trace.export"), std::string::npos);
  // The span args made it out.
  EXPECT_NE(json.find("\"what\""), std::string::npos);
}

}  // namespace
}  // namespace stindex
