#include "util/json_writer.h"

#include <cmath>
#include <limits>

#include "gtest/gtest.h"

namespace stindex {
namespace {

TEST(JsonWriterTest, EmptyObjectAndArray) {
  {
    JsonWriter writer;
    writer.BeginObject().EndObject();
    EXPECT_EQ(writer.str(), "{}");
  }
  {
    JsonWriter writer;
    writer.BeginArray().EndArray();
    EXPECT_EQ(writer.str(), "[]");
  }
}

TEST(JsonWriterTest, ScalarTopLevel) {
  JsonWriter writer;
  writer.Int(-42);
  EXPECT_EQ(writer.str(), "-42");
}

TEST(JsonWriterTest, PrettyPrintedObject) {
  JsonWriter writer;
  writer.BeginObject()
      .Key("name")
      .String("bench")
      .Key("threads")
      .Int(4)
      .Key("ok")
      .Bool(true)
      .EndObject();
  EXPECT_EQ(writer.str(),
            "{\n  \"name\": \"bench\",\n  \"threads\": 4,\n  \"ok\": true\n}");
}

TEST(JsonWriterTest, NestedContainers) {
  JsonWriter writer;
  writer.BeginObject()
      .Key("series")
      .BeginArray()
      .BeginObject()
      .Key("x")
      .Int(1)
      .EndObject()
      .EndArray()
      .EndObject();
  EXPECT_EQ(writer.str(),
            "{\n  \"series\": [\n    {\n      \"x\": 1\n    }\n  ]\n}");
}

TEST(JsonWriterTest, ArrayOfNumbers) {
  JsonWriter writer;
  writer.BeginArray().Int(1).Int(2).Int(3).EndArray();
  EXPECT_EQ(writer.str(), "[\n  1,\n  2,\n  3\n]");
}

TEST(JsonWriterTest, StringEscaping) {
  JsonWriter writer;
  writer.String(std::string("a\"b\\c\n\t\r") + '\x01');
  EXPECT_EQ(writer.str(), "\"a\\\"b\\\\c\\n\\t\\r\\u0001\"");
}

TEST(JsonWriterTest, DoubleRoundTrips) {
  JsonWriter writer;
  writer.BeginArray()
      .Double(0.1)
      .Double(1.0)
      .Double(-2.5e-300)
      .EndArray();
  const std::string text = writer.str();
  EXPECT_NE(text.find("0.1"), std::string::npos);
  EXPECT_NE(text.find("-2.5e-300"), std::string::npos);
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter writer;
  writer.BeginArray()
      .Double(std::nan(""))
      .Double(std::numeric_limits<double>::infinity())
      .Double(-std::numeric_limits<double>::infinity())
      .EndArray();
  EXPECT_EQ(writer.str(), "[\n  null,\n  null,\n  null\n]");
}

TEST(JsonWriterTest, UintNearMax) {
  JsonWriter writer;
  writer.Uint(std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(writer.str(), "18446744073709551615");
}

TEST(JsonWriterTest, NullValue) {
  JsonWriter writer;
  writer.BeginObject().Key("x").Null().EndObject();
  EXPECT_EQ(writer.str(), "{\n  \"x\": null\n}");
}

TEST(JsonWriterDeathTest, ValueInObjectWithoutKeyAborts) {
  EXPECT_DEATH(
      {
        JsonWriter writer;
        writer.BeginObject().Int(1);
      },
      "");
}

TEST(JsonWriterDeathTest, KeyInsideArrayAborts) {
  EXPECT_DEATH(
      {
        JsonWriter writer;
        writer.BeginArray().Key("bad");
      },
      "");
}

TEST(JsonWriterDeathTest, MismatchedCloseAborts) {
  EXPECT_DEATH(
      {
        JsonWriter writer;
        writer.BeginObject().EndArray();
      },
      "");
}

TEST(JsonWriterDeathTest, StrOnUnfinishedDocumentAborts) {
  EXPECT_DEATH(
      {
        JsonWriter writer;
        writer.BeginObject();
        writer.str();
      },
      "");
}

TEST(JsonWriterDeathTest, SecondTopLevelValueAborts) {
  EXPECT_DEATH(
      {
        JsonWriter writer;
        writer.Int(1);
        writer.Int(2);
      },
      "");
}

}  // namespace
}  // namespace stindex
