// The moving-points special case (paper Section I: "(i) when the objects
// have no spatial extents (moving points)") must flow through the whole
// pipeline: generation, splitting, distribution, and both indexes.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/split_pipeline.h"
#include "datagen/query_gen.h"
#include "datagen/random_dataset.h"
#include "pprtree/ppr_tree.h"
#include "rstar/rstar_tree.h"

namespace stindex {
namespace {

std::vector<Trajectory> MakePointObjects(size_t n) {
  RandomDatasetConfig config;
  config.num_objects = n;
  config.min_extent = 0.0;
  config.max_extent = 0.0;
  config.seed = 201;
  return GenerateRandomDataset(config);
}

TEST(MovingPointsTest, GeneratedObjectsAreDegenerate) {
  const std::vector<Trajectory> points = MakePointObjects(100);
  for (const Trajectory& object : points) {
    for (const Rect2D& rect : object.Sample()) {
      EXPECT_TRUE(rect.IsValid());
      EXPECT_DOUBLE_EQ(rect.Area(), 0.0);
    }
  }
}

TEST(MovingPointsTest, SplittingReducesVolumeToNearZero) {
  const std::vector<Trajectory> points = MakePointObjects(50);
  // k_max above the maximum lifetime, so the curve tail is fully split.
  const std::vector<VolumeCurve> curves =
      ComputeVolumeCurves(points, 128, SplitMethod::kMerge);
  // A moving point's unsplit MBR has positive volume; fully split boxes
  // are degenerate.
  for (const VolumeCurve& curve : curves) {
    EXPECT_NEAR(curve.volume.back(), 0.0, 1e-12);
    for (size_t j = 1; j < curve.volume.size(); ++j) {
      EXPECT_LE(curve.volume[j], curve.volume[j - 1] + 1e-12);
    }
  }
}

TEST(MovingPointsTest, IndexesAnswerCorrectly) {
  const std::vector<Trajectory> points = MakePointObjects(300);
  const std::vector<VolumeCurve> curves =
      ComputeVolumeCurves(points, 64, SplitMethod::kMerge);
  const Distribution dist = DistributeLAGreedy(curves, 450);
  const std::vector<SegmentRecord> records =
      BuildSegments(points, dist.splits, SplitMethod::kMerge);

  std::unique_ptr<PprTree> ppr = BuildPprTree(records);
  ppr->CheckInvariants();
  RStarTree rstar;
  const std::vector<Box3D> boxes = SegmentsToBoxes(records, 0, 1000);
  for (size_t i = 0; i < boxes.size(); ++i) {
    rstar.Insert(boxes[i], static_cast<DataId>(i));
  }
  rstar.CheckInvariants();

  QuerySetConfig config = MixedSnapshotSet();
  config.count = 60;
  for (const STQuery& query : GenerateQuerySet(config)) {
    std::set<uint64_t> expected;
    for (size_t i = 0; i < records.size(); ++i) {
      if (records[i].box.interval.Intersects(query.range) &&
          records[i].box.rect.Intersects(query.area)) {
        expected.insert(i);
      }
    }
    std::vector<PprDataId> ppr_hits;
    ppr->SnapshotQuery(query.area, query.range.start, &ppr_hits);
    EXPECT_EQ(std::set<uint64_t>(ppr_hits.begin(), ppr_hits.end()),
              expected);
    std::vector<DataId> rstar_hits;
    rstar.Search(QueryToBox(query, 0, 1000), &rstar_hits);
    EXPECT_EQ(std::set<uint64_t>(rstar_hits.begin(), rstar_hits.end()),
              expected);
  }
}

TEST(MovingPointsTest, MixedPointAndRegionDataset) {
  // Half points, half regions, in one PPR-tree.
  RandomDatasetConfig region_config;
  region_config.num_objects = 150;
  region_config.seed = 202;
  std::vector<Trajectory> objects = GenerateRandomDataset(region_config);
  const std::vector<Trajectory> points = MakePointObjects(150);
  for (const Trajectory& point : points) {
    objects.emplace_back(static_cast<ObjectId>(objects.size()),
                         point.tuples());
  }
  const std::vector<SegmentRecord> records = BuildUnsplitSegments(objects);
  std::unique_ptr<PprTree> tree = BuildPprTree(records);
  tree->CheckInvariants();
  std::vector<PprDataId> hits;
  tree->SnapshotQuery(Rect2D(0, 0, 1, 1), 500, &hits);
  size_t expected = 0;
  for (const SegmentRecord& record : records) {
    expected += record.box.interval.Contains(500) ? 1 : 0;
  }
  EXPECT_EQ(hits.size(), expected);
}

}  // namespace
}  // namespace stindex
