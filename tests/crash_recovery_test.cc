// Crash-point recovery harness for the live ingestion tier — the
// headline test of the crash-safety contract.
//
// A reference run streams a dataset through a LiveTier journaling onto a
// real FilePageBackend, committing every few updates, and records every
// mutating backend call (page write / sync) along the way. The sweep then
// repeats the run once per mutation site with FaultInjectingBackend's
// crash trigger armed at that site: the call fails, every later call
// fails too, and the file is Abandon()ed so the on-disk bytes are exactly
// what a killed process leaves behind. Recovery reopens the file, replays
// the WAL, re-ingests the unacknowledged tail (everything after the last
// successful Commit), and finishes the stream.
//
// After every single crash point the recovered tier must be
// indistinguishable from the never-crashed reference: byte-identical
// query answers, the identical migrated segment list (same order, same
// boxes — so the same PprDataIds), and the identical tree shape.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "datagen/query_gen.h"
#include "datagen/random_dataset.h"
#include "live/live_tier.h"
#include "storage/fault_backend.h"
#include "storage/file_backend.h"
#include "util/metrics.h"
#include "util/status.h"

namespace stindex {
namespace {

constexpr Time kTimeDomain = 150;
constexpr size_t kCommitEvery = 16;

std::vector<Trajectory> MakeObjects() {
  RandomDatasetConfig config;
  config.num_objects = 40;
  config.time_domain = kTimeDomain;
  config.max_lifetime = 30;
  config.min_extent = 0.01;
  config.max_extent = 0.05;
  config.seed = 1234;
  return GenerateRandomDataset(config);
}

std::vector<STQuery> MakeQueries() {
  QuerySetConfig config = MixedSnapshotSet();
  config.count = 16;
  config.time_domain = kTimeDomain;
  config.min_extent = 0.02;
  config.max_extent = 0.2;
  std::vector<STQuery> queries = GenerateQuerySet(config);
  QuerySetConfig ranges = SmallRangeSet();
  ranges.count = 8;
  ranges.time_domain = kTimeDomain;
  ranges.min_extent = 0.02;
  ranges.max_extent = 0.2;
  for (const STQuery& query : GenerateQuerySet(ranges)) queries.push_back(query);
  return queries;
}

LiveTierOptions TierOptions() {
  LiveTierOptions options;
  options.index.capacity = 10;
  options.index.buffer = 120;
  return options;
}

struct RunResult {
  std::vector<std::vector<ObjectId>> answers;
  std::vector<SegmentRecord> segments;
  size_t tree_pages = 0;
  size_t tree_roots = 0;
};

bool SameSegments(const std::vector<SegmentRecord>& a,
                  const std::vector<SegmentRecord>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].object != b[i].object ||
        a[i].box.interval.start != b[i].box.interval.start ||
        a[i].box.interval.end != b[i].box.interval.end ||
        a[i].box.rect.xlo != b[i].box.rect.xlo ||
        a[i].box.rect.ylo != b[i].box.rect.ylo ||
        a[i].box.rect.xhi != b[i].box.rect.xhi ||
        a[i].box.rect.yhi != b[i].box.rect.yhi) {
      return false;
    }
  }
  return true;
}

RunResult Snapshot(const LiveTier& tier, const std::vector<STQuery>& queries) {
  RunResult result;
  for (const STQuery& query : queries) {
    std::vector<ObjectId> answer;
    tier.IntervalQuery(query.area, query.range, &answer);
    result.answers.push_back(std::move(answer));
  }
  result.segments = tier.migrated_segments();
  result.tree_pages = tier.historical().PageCount();
  result.tree_roots = tier.historical().NumRoots();
  return result;
}

// The never-crashed run; `mutations` (when non-null) receives the number
// of mutating backend calls the whole run performs — the sweep space.
// `checkpoints` (when non-null) receives the run's final checkpoint
// sequence, to prove a checkpointed sweep actually cycled.
RunResult ReferenceRun(const LiveTierOptions& options, const std::string& path,
                       const std::vector<LiveObservation>& stream,
                       const std::vector<STQuery>& queries, uint64_t* mutations,
                       uint64_t* checkpoints = nullptr) {
  RunResult result;
  Result<std::unique_ptr<FilePageBackend>> file = FilePageBackend::Create(path);
  EXPECT_TRUE(file.ok()) << file.status().ToString();
  auto fault = std::make_unique<FaultInjectingBackend>(
      std::move(file).value(), FaultInjectingBackend::Faults{});
  FaultInjectingBackend* counter = fault.get();
  Result<std::unique_ptr<LiveTier>> tier =
      LiveTier::Open(options, std::move(fault));
  EXPECT_TRUE(tier.ok()) << tier.status().ToString();
  for (size_t i = 0; i < stream.size(); ++i) {
    EXPECT_TRUE(tier.value()->Apply(stream[i]).ok());
    if ((i + 1) % kCommitEvery == 0) {
      EXPECT_TRUE(tier.value()->Commit().ok());
    }
  }
  if (checkpoints != nullptr) *checkpoints = tier.value()->checkpoint_seq();
  EXPECT_TRUE(tier.value()->Finish().ok());
  if (mutations != nullptr) *mutations = counter->mutations();
  return Snapshot(*tier.value(), queries);
}

TEST(CrashRecoveryTest, EveryWriteSiteRecoversToTheReferenceRun) {
  const std::vector<Trajectory> objects = MakeObjects();
  const std::vector<LiveObservation> stream = MakeObservationStream(objects);
  const std::vector<STQuery> queries = MakeQueries();

  const std::string ref_path = ::testing::TempDir() + "/crash_ref.stpages";
  uint64_t mutations = 0;
  const RunResult reference =
      ReferenceRun(TierOptions(), ref_path, stream, queries, &mutations);
  ASSERT_GT(mutations, 50u) << "sweep space suspiciously small";
  ASSERT_FALSE(reference.segments.empty());

  const std::string path = ::testing::TempDir() + "/crash_sweep.stpages";
  size_t crashes_mid_stream = 0;
  size_t crashes_in_finish = 0;

  for (uint64_t crash_at = 1; crash_at <= mutations; ++crash_at) {
    SCOPED_TRACE("crash_at_write=" + std::to_string(crash_at));

    // --- the doomed run -------------------------------------------------
    Result<std::unique_ptr<FilePageBackend>> file =
        FilePageBackend::Create(path);
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    FilePageBackend* raw_file = file.value().get();
    FaultInjectingBackend::Faults faults;
    faults.crash_at_write = crash_at;
    auto fault = std::make_unique<FaultInjectingBackend>(
        std::move(file).value(), faults);
    FaultInjectingBackend* raw_fault = fault.get();

    Result<std::unique_ptr<LiveTier>> doomed =
        LiveTier::Open(TierOptions(), std::move(fault));
    ASSERT_TRUE(doomed.ok()) << doomed.status().ToString();

    size_t acked = 0;  // updates acknowledged by a successful Commit
    bool crashed = false;
    for (size_t i = 0; i < stream.size() && !crashed; ++i) {
      if (!doomed.value()->Apply(stream[i]).ok()) {
        crashed = true;
        break;
      }
      if ((i + 1) % kCommitEvery == 0) {
        if (!doomed.value()->Commit().ok()) {
          crashed = true;
          break;
        }
        acked = i + 1;
      }
    }
    if (!crashed) {
      // The crash fires inside Finish. Updates applied after the last
      // successful Commit were never acknowledged, so `acked` stays put:
      // recovery re-ingests them.
      ASSERT_FALSE(doomed.value()->Finish().ok())
          << "crash point " << crash_at << " of " << mutations
          << " never fired";
      ++crashes_in_finish;
    } else {
      ++crashes_mid_stream;
    }
    ASSERT_TRUE(raw_fault->crashed());
    // Close the fd without the destructor's sync backstop: the disk now
    // holds exactly what the dead process managed to persist.
    raw_file->Abandon();
    doomed.value().reset();

    // --- recovery -------------------------------------------------------
    Result<std::unique_ptr<FilePageBackend>> reopened =
        FilePageBackend::Open(path);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    Result<std::unique_ptr<LiveTier>> recovered =
        LiveTier::Open(TierOptions(), std::move(reopened).value());
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

    // Re-ingest the unacknowledged tail; absorbed records are skipped.
    for (size_t i = acked; i < stream.size(); ++i) {
      ASSERT_TRUE(recovered.value()->Apply(stream[i]).ok());
      if ((i + 1) % kCommitEvery == 0) {
        ASSERT_TRUE(recovered.value()->Commit().ok());
      }
    }
    ASSERT_TRUE(recovered.value()->Finish().ok());

    // --- equivalence ----------------------------------------------------
    const RunResult after = Snapshot(*recovered.value(), queries);
    ASSERT_EQ(after.answers, reference.answers);
    ASSERT_TRUE(SameSegments(after.segments, reference.segments));
    ASSERT_EQ(after.tree_pages, reference.tree_pages);
    ASSERT_EQ(after.tree_roots, reference.tree_roots);
  }

  // The sweep must have exercised both phases.
  EXPECT_GT(crashes_mid_stream, 0u);
  EXPECT_GT(crashes_in_finish, 0u);

  std::remove(ref_path.c_str());
  std::remove(path.c_str());
}

// A second, smaller sweep where recovery itself reuses the file for
// further committed work and then "crashes" again (clean close), proving
// the journal stays replayable across generations of appends.
TEST(CrashRecoveryTest, RecoveredJournalSurvivesAnotherGeneration) {
  const std::vector<Trajectory> objects = MakeObjects();
  const std::vector<LiveObservation> stream = MakeObservationStream(objects);
  const std::vector<STQuery> queries = MakeQueries();

  const std::string ref_path = ::testing::TempDir() + "/crash_gen_ref.stpages";
  const RunResult reference =
      ReferenceRun(TierOptions(), ref_path, stream, queries, nullptr);

  const std::string path = ::testing::TempDir() + "/crash_gen.stpages";
  const size_t third = stream.size() / 3;

  // Generation 1: ingest a third, commit, drop the tier (clean close).
  {
    Result<std::unique_ptr<FilePageBackend>> file =
        FilePageBackend::Create(path);
    ASSERT_TRUE(file.ok());
    Result<std::unique_ptr<LiveTier>> tier =
        LiveTier::Open(TierOptions(), std::move(file).value());
    ASSERT_TRUE(tier.ok());
    for (size_t i = 0; i < third; ++i) {
      ASSERT_TRUE(tier.value()->Apply(stream[i]).ok());
    }
    ASSERT_TRUE(tier.value()->Commit().ok());
  }
  // Generation 2: recover, ingest another third with a mid-write crash.
  size_t acked = third;
  {
    Result<std::unique_ptr<FilePageBackend>> file = FilePageBackend::Open(path);
    ASSERT_TRUE(file.ok());
    FilePageBackend* raw_file = file.value().get();
    FaultInjectingBackend::Faults faults;
    faults.crash_at_write = 7;
    auto fault = std::make_unique<FaultInjectingBackend>(
        std::move(file).value(), faults);
    Result<std::unique_ptr<LiveTier>> tier =
        LiveTier::Open(TierOptions(), std::move(fault));
    ASSERT_TRUE(tier.ok());
    for (size_t i = third; i < 2 * third; ++i) {
      if (!tier.value()->Apply(stream[i]).ok()) break;
      if ((i + 1) % kCommitEvery == 0) {
        if (!tier.value()->Commit().ok()) break;
        acked = i + 1;
      }
    }
    raw_file->Abandon();
  }
  // Generation 3: recover again and run to the end.
  {
    Result<std::unique_ptr<FilePageBackend>> file = FilePageBackend::Open(path);
    ASSERT_TRUE(file.ok());
    Result<std::unique_ptr<LiveTier>> tier =
        LiveTier::Open(TierOptions(), std::move(file).value());
    ASSERT_TRUE(tier.ok()) << tier.status().ToString();
    for (size_t i = acked; i < stream.size(); ++i) {
      ASSERT_TRUE(tier.value()->Apply(stream[i]).ok());
    }
    ASSERT_TRUE(tier.value()->Finish().ok());
    const RunResult after = Snapshot(*tier.value(), queries);
    EXPECT_EQ(after.answers, reference.answers);
    EXPECT_TRUE(SameSegments(after.segments, reference.segments));
  }

  std::remove(ref_path.c_str());
  std::remove(path.c_str());
}

// The checkpointed sweep: with automatic checkpointing and group commit
// armed, the mutation space now includes every write of the checkpoint
// procedure — shadow node pages, the metadata chain, both syncs around
// the header, the header itself, and every Free of truncation. A crash
// at ANY of those sites (mid-checkpoint, between tree flush and header
// commit, mid-truncation) must recover to the uninterrupted reference.
TEST(CrashRecoveryTest, CheckpointedCrashSweepRecoversAtEveryMutationSite) {
  RandomDatasetConfig data;
  data.num_objects = 12;  // small on purpose: the sweep is O(mutations^2)
  data.time_domain = 60;
  data.max_lifetime = 24;
  data.min_extent = 0.01;
  data.max_extent = 0.05;
  data.seed = 4321;
  const std::vector<Trajectory> objects = GenerateRandomDataset(data);
  const std::vector<LiveObservation> stream = MakeObservationStream(objects);
  const std::vector<STQuery> queries = MakeQueries();

  LiveTierOptions options = TierOptions();
  options.checkpoint_every_pages = 1;  // checkpoint at (nearly) every commit
  options.group_commit = true;
  options.commit_interval_us = 0;

  const std::string ref_path = ::testing::TempDir() + "/ckpt_ref.stpages";
  uint64_t mutations = 0;
  uint64_t checkpoints = 0;
  const RunResult reference = ReferenceRun(options, ref_path, stream, queries,
                                           &mutations, &checkpoints);
  ASSERT_GE(checkpoints, 2u) << "sweep never cycles a checkpoint";
  ASSERT_GT(mutations, 100u) << "sweep space suspiciously small";
  ASSERT_FALSE(reference.segments.empty());

  const std::string path = ::testing::TempDir() + "/ckpt_sweep.stpages";
  for (uint64_t crash_at = 1; crash_at <= mutations; ++crash_at) {
    SCOPED_TRACE("crash_at_write=" + std::to_string(crash_at));

    Result<std::unique_ptr<FilePageBackend>> file =
        FilePageBackend::Create(path);
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    FilePageBackend* raw_file = file.value().get();
    FaultInjectingBackend::Faults faults;
    faults.crash_at_write = crash_at;
    auto fault = std::make_unique<FaultInjectingBackend>(
        std::move(file).value(), faults);
    FaultInjectingBackend* raw_fault = fault.get();

    Result<std::unique_ptr<LiveTier>> doomed =
        LiveTier::Open(options, std::move(fault));
    ASSERT_TRUE(doomed.ok()) << doomed.status().ToString();

    size_t acked = 0;
    bool crashed = false;
    for (size_t i = 0; i < stream.size() && !crashed; ++i) {
      if (!doomed.value()->Apply(stream[i]).ok()) {
        crashed = true;
        break;
      }
      if ((i + 1) % kCommitEvery == 0) {
        if (!doomed.value()->Commit().ok()) {
          crashed = true;
          break;
        }
        acked = i + 1;
      }
    }
    if (!crashed) {
      ASSERT_FALSE(doomed.value()->Finish().ok())
          << "crash point " << crash_at << " of " << mutations
          << " never fired";
    }
    ASSERT_TRUE(raw_fault->crashed());
    raw_file->Abandon();
    doomed.value().reset();

    Result<std::unique_ptr<FilePageBackend>> reopened =
        FilePageBackend::Open(path);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    Result<std::unique_ptr<LiveTier>> recovered =
        LiveTier::Open(options, std::move(reopened).value());
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

    for (size_t i = acked; i < stream.size(); ++i) {
      ASSERT_TRUE(recovered.value()->Apply(stream[i]).ok());
      if ((i + 1) % kCommitEvery == 0) {
        ASSERT_TRUE(recovered.value()->Commit().ok());
      }
    }
    ASSERT_TRUE(recovered.value()->Finish().ok());

    const RunResult after = Snapshot(*recovered.value(), queries);
    ASSERT_EQ(after.answers, reference.answers);
    ASSERT_TRUE(SameSegments(after.segments, reference.segments));
    ASSERT_EQ(after.tree_pages, reference.tree_pages);
    ASSERT_EQ(after.tree_roots, reference.tree_roots);
  }

  std::remove(ref_path.c_str());
  std::remove(path.c_str());
}

// Checkpoints must bound the journal: across generations of
// reopen-ingest-close cycles, recovery replays only the tail past the
// last committed checkpoint — O(checkpoint interval), never O(history) —
// and truncation actually frees pages. Answers stay byte-identical to an
// uninterrupted run throughout.
TEST(CrashRecoveryTest, JournalStaysBoundedAcrossCheckpointCycles) {
  const std::vector<Trajectory> objects = MakeObjects();
  const std::vector<LiveObservation> stream = MakeObservationStream(objects);
  const std::vector<STQuery> queries = MakeQueries();

  LiveTierOptions options = TierOptions();
  options.checkpoint_every_pages = 2;

  const std::string ref_path = ::testing::TempDir() + "/bound_ref.stpages";
  const RunResult reference =
      ReferenceRun(TierOptions(), ref_path, stream, queries, nullptr);

  Counter* truncated =
      MetricRegistry::Global().GetCounter("live.wal.truncated_pages");
  const uint64_t truncated_before = truncated->Value();

  const std::string path = ::testing::TempDir() + "/bound_gens.stpages";
  // Replay on reopen may never exceed the checkpoint trigger plus the
  // pages of one commit interval flushed after the last checkpoint.
  const uint64_t tail_bound = options.checkpoint_every_pages + 2;
  constexpr size_t kGenerations = 4;
  uint64_t last_checkpoint_seq = 0;
  uint64_t pages_flushed_total = 0;

  for (size_t gen = 0; gen < kGenerations; ++gen) {
    SCOPED_TRACE("generation=" + std::to_string(gen));
    Result<std::unique_ptr<FilePageBackend>> file =
        gen == 0 ? FilePageBackend::Create(path) : FilePageBackend::Open(path);
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    Result<std::unique_ptr<LiveTier>> tier =
        LiveTier::Open(options, std::move(file).value());
    ASSERT_TRUE(tier.ok()) << tier.status().ToString();

    // Bounded recovery: the replayed tail never grows with history.
    EXPECT_LE(tier.value()->recovered().pages, tail_bound);
    EXPECT_GE(tier.value()->checkpoint_seq(), last_checkpoint_seq);

    const size_t begin = gen * stream.size() / kGenerations;
    const size_t end = (gen + 1) * stream.size() / kGenerations;
    for (size_t i = begin; i < end; ++i) {
      ASSERT_TRUE(tier.value()->Apply(stream[i]).ok());
      if ((i + 1) % kCommitEvery == 0) {
        ASSERT_TRUE(tier.value()->Commit().ok());
      }
    }
    if (gen + 1 < kGenerations) {
      ASSERT_TRUE(tier.value()->Commit().ok());
      pages_flushed_total += tier.value()->wal_pages();
      last_checkpoint_seq = tier.value()->checkpoint_seq();
      EXPECT_GT(last_checkpoint_seq, 0u);
      continue;  // clean close; the next generation reopens
    }

    // Final generation: prove the cycle kept going, then finish and
    // compare against the uninterrupted reference.
    pages_flushed_total += tier.value()->wal_pages();
    EXPECT_GT(tier.value()->checkpoint_seq(), last_checkpoint_seq);
    ASSERT_TRUE(tier.value()->Finish().ok());
    const RunResult after = Snapshot(*tier.value(), queries);
    EXPECT_EQ(after.answers, reference.answers);
    EXPECT_TRUE(SameSegments(after.segments, reference.segments));
  }

  // The bound is non-trivial: the run flushed far more journal pages than
  // any reopen ever replayed, and truncation reclaimed pages.
  EXPECT_GT(pages_flushed_total, tail_bound * kGenerations);
  EXPECT_GT(truncated->Value(), truncated_before);

  std::remove(ref_path.c_str());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace stindex
