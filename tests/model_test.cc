#include <gtest/gtest.h>

#include "core/split_pipeline.h"
#include "datagen/query_gen.h"
#include "datagen/random_dataset.h"
#include "model/pagel_metrics.h"
#include "model/ppr_cost_model.h"
#include "model/rtree_cost_model.h"
#include "model/split_advisor.h"
#include "pprtree/ppr_tree.h"
#include "rstar/rstar_tree.h"

namespace stindex {
namespace {

TEST(RTreeCostModelTest, MonotoneInQuerySize) {
  const RTreeCostModel model({0.01, 0.01, 0.05}, 10000, 35.0);
  const double small = model.ExpectedNodeAccesses({0.001, 0.001, 0.001});
  const double medium = model.ExpectedNodeAccesses({0.01, 0.01, 0.01});
  const double large = model.ExpectedNodeAccesses({0.1, 0.1, 0.1});
  EXPECT_LT(small, medium);
  EXPECT_LT(medium, large);
  EXPECT_GE(small, 1.0);  // at least the root
}

TEST(RTreeCostModelTest, MonotoneInDataSize) {
  const std::vector<double> query = {0.01, 0.01, 0.01};
  const RTreeCostModel small(std::vector<double>{0.01, 0.01, 0.05}, 1000,
                             35.0);
  const RTreeCostModel large(std::vector<double>{0.01, 0.01, 0.05}, 100000,
                             35.0);
  EXPECT_LT(small.ExpectedNodeAccesses(query),
            large.ExpectedNodeAccesses(query));
}

TEST(RTreeCostModelTest, LargerBoxesCostMore) {
  const std::vector<double> query = {0.01, 0.01, 0.01};
  const RTreeCostModel tight(std::vector<double>{0.005, 0.005, 0.01}, 20000,
                             35.0);
  const RTreeCostModel fat(std::vector<double>{0.05, 0.05, 0.5}, 20000,
                           35.0);
  EXPECT_LT(tight.ExpectedNodeAccesses(query),
            fat.ExpectedNodeAccesses(query));
}

TEST(RTreeCostModelTest, FromBoxesAveragesExtents) {
  std::vector<Box3D> boxes = {Box3D(0, 0, 0, 0.2, 0.1, 0.4),
                              Box3D(0.5, 0.5, 0.5, 0.7, 0.8, 0.6)};
  const RTreeCostModel model = RTreeCostModel::FromBoxes(boxes, 10.0);
  // Full-space query touches every node (bounded by totals).
  const double everything = model.ExpectedNodeAccesses({1.0, 1.0, 1.0});
  EXPECT_GT(everything, 1.0);
}

TEST(RTreeCostModelTest, WholeSpaceQueryVisitsEverything) {
  const size_t n = 50000;
  const double fanout = 35.0;
  const RTreeCostModel model({0.01, 0.01, 0.02}, n, fanout);
  const double everything = model.ExpectedNodeAccesses({1.0, 1.0, 1.0});
  // Should approximate the total node count: sum n/f^j over levels.
  double expected = 1.0;
  for (double nodes = static_cast<double>(n) / fanout; nodes >= 1.0;
       nodes /= fanout) {
    expected += nodes;
  }
  EXPECT_NEAR(everything, expected, expected * 0.2);
}

TEST(PprCostModelTest, MonotoneInQuerySizeAndDuration) {
  const PprCostModel model(2000.0, 0.01, 0.01, 50.0, 30.0);
  const double tiny = model.ExpectedNodeAccesses(0.001, 0.001, 1);
  const double big = model.ExpectedNodeAccesses(0.05, 0.05, 1);
  EXPECT_LT(tiny, big);
  const double snapshot = model.ExpectedNodeAccesses(0.01, 0.01, 1);
  const double interval = model.ExpectedNodeAccesses(0.01, 0.01, 20);
  EXPECT_LT(snapshot, interval);
}

TEST(PprCostModelTest, CostTracksAliveSetNotTotalHistory) {
  // Two evolutions with the same alive density but different lengths of
  // history must predict the same snapshot cost.
  const PprCostModel short_history(1000.0, 0.01, 0.01, 10.0, 30.0);
  const PprCostModel long_history(1000.0, 0.01, 0.01, 500.0, 30.0);
  EXPECT_DOUBLE_EQ(short_history.ExpectedNodeAccesses(0.01, 0.01, 1),
                   long_history.ExpectedNodeAccesses(0.01, 0.01, 1));
}

TEST(PprCostModelTest, SplittingReducesPredictedCost) {
  // Dense enough that the ephemeral alive tree has multiple levels
  // (~150 alive records per instant).
  RandomDatasetConfig config;
  config.num_objects = 1500;
  config.time_domain = 300;
  config.max_lifetime = 60;
  const std::vector<Trajectory> objects = GenerateRandomDataset(config);

  const std::vector<SegmentRecord> unsplit = BuildUnsplitSegments(objects);
  const std::vector<VolumeCurve> curves =
      ComputeVolumeCurves(objects, 64, SplitMethod::kMerge);
  const Distribution dist =
      DistributeLAGreedy(curves, static_cast<int64_t>(objects.size()));
  const std::vector<SegmentRecord> split =
      BuildSegments(objects, dist.splits, SplitMethod::kMerge);

  const PprCostModel before =
      PprCostModel::FromSegments(unsplit, config.time_domain, 30.0);
  const PprCostModel after =
      PprCostModel::FromSegments(split, config.time_domain, 30.0);
  // Splitting shrinks alive extents; with the alive count unchanged the
  // predicted snapshot cost must drop (the paper's core claim).
  EXPECT_LT(after.ExpectedNodeAccesses(0.03, 0.03, 1),
            before.ExpectedNodeAccesses(0.03, 0.03, 1));
}

TEST(PagelMetricsTest, RStarAggregatesMatchStructure) {
  RandomDatasetConfig config;
  config.num_objects = 400;
  const std::vector<Trajectory> objects = GenerateRandomDataset(config);
  const std::vector<SegmentRecord> records = BuildUnsplitSegments(objects);
  RStarTree tree;
  const std::vector<Box3D> boxes = SegmentsToBoxes(records, 0, 1000);
  for (size_t i = 0; i < boxes.size(); ++i) {
    tree.Insert(boxes[i], static_cast<DataId>(i));
  }
  const PagelMetrics metrics = AnalyzeRStar(tree);
  EXPECT_EQ(metrics.node_count, tree.PageCount());
  EXPECT_GT(metrics.leaf_count, 0u);
  EXPECT_LE(metrics.leaf_count, metrics.node_count);
  EXPECT_GT(metrics.total_volume, 0.0);
  EXPECT_GT(metrics.total_surface, 0.0);
  // Leaves hold all records; fill between min and max entries.
  EXPECT_GE(metrics.avg_leaf_fill, 20.0);
  EXPECT_LE(metrics.avg_leaf_fill, 50.0);
  EXPECT_NEAR(metrics.avg_leaf_fill *
                  static_cast<double>(metrics.leaf_count),
              static_cast<double>(records.size()), 0.5);
}

TEST(PagelMetricsTest, EmptyTreesYieldZeroes) {
  RStarTree tree;
  const PagelMetrics rstar = AnalyzeRStar(tree);
  EXPECT_EQ(rstar.node_count, 0u);
  PprTree ppr;
  const PagelMetrics at = AnalyzePprAt(ppr, 10);
  EXPECT_EQ(at.node_count, 0u);
  EXPECT_DOUBLE_EQ(at.total_volume, 0.0);
}

TEST(PagelMetricsTest, SplittingShrinksPprAliveVolumeNotNodeCount) {
  RandomDatasetConfig config;
  config.num_objects = 1500;
  config.time_domain = 300;
  config.max_lifetime = 60;
  const std::vector<Trajectory> objects = GenerateRandomDataset(config);
  const std::vector<VolumeCurve> curves =
      ComputeVolumeCurves(objects, 64, SplitMethod::kMerge);

  const std::unique_ptr<PprTree> unsplit =
      BuildPprTree(BuildUnsplitSegments(objects));
  const Distribution dist = DistributeLAGreedy(
      curves, static_cast<int64_t>(objects.size()) * 3 / 2);
  const std::unique_ptr<PprTree> split =
      BuildPprTree(BuildSegments(objects, dist.splits, SplitMethod::kMerge));

  const std::vector<Time> probes = {50, 150, 250};
  const PagelMetrics before = AnalyzePprAverage(*unsplit, probes);
  const PagelMetrics after = AnalyzePprAverage(*split, probes);
  // The paper's core intuition: alive volume shrinks, node count stays
  // within a small factor (alive record count is unchanged).
  EXPECT_LT(after.total_volume, before.total_volume);
  EXPECT_LT(after.node_count, before.node_count * 2);
  EXPECT_GT(after.node_count * 2, before.node_count);
}

TEST(SplitAdvisorTest, AnalyticalPrefersSplittingForPpr) {
  RandomDatasetConfig config;
  config.num_objects = 300;
  const std::vector<Trajectory> objects = GenerateRandomDataset(config);
  const std::vector<VolumeCurve> curves =
      ComputeVolumeCurves(objects, 64, SplitMethod::kMerge);
  QuerySetConfig query_config = SmallSnapshotSet();
  query_config.count = 100;
  const std::vector<STQuery> workload = GenerateQuerySet(query_config);

  SplitAdvisorOptions options;
  const std::vector<int64_t> candidates = {0, 150, 450};
  const SplitAdvice advice = SplitAdvisor::ChooseAnalytical(
      objects, curves, candidates, workload, IndexKind::kPprTree, options);
  ASSERT_EQ(advice.evaluated.size(), 3u);
  EXPECT_GT(advice.num_splits, 0);
  // The evaluated curve must actually decrease from the unsplit point.
  EXPECT_LT(advice.estimated_cost, advice.evaluated.front().second);
}

TEST(SplitAdvisorTest, SpaceWeightCapsTheBudget) {
  RandomDatasetConfig config;
  config.num_objects = 200;
  const std::vector<Trajectory> objects = GenerateRandomDataset(config);
  const std::vector<VolumeCurve> curves =
      ComputeVolumeCurves(objects, 64, SplitMethod::kMerge);
  QuerySetConfig query_config = SmallSnapshotSet();
  query_config.count = 50;
  const std::vector<STQuery> workload = GenerateQuerySet(query_config);

  const std::vector<int64_t> candidates = {0, 100, 200, 300};
  SplitAdvisorOptions free_space;
  const SplitAdvice unconstrained = SplitAdvisor::ChooseAnalytical(
      objects, curves, candidates, workload, IndexKind::kPprTree,
      free_space);
  SplitAdvisorOptions pricey;
  pricey.space_weight = 100.0;  // overwhelming space cost
  const SplitAdvice constrained = SplitAdvisor::ChooseAnalytical(
      objects, curves, candidates, workload, IndexKind::kPprTree, pricey);
  EXPECT_LE(constrained.num_splits, unconstrained.num_splits);
  EXPECT_EQ(constrained.num_splits, 0);
}

TEST(SplitAdvisorTest, SamplingModeRunsAndReturnsCandidate) {
  RandomDatasetConfig config;
  config.num_objects = 300;
  config.time_domain = 200;
  config.max_lifetime = 50;
  const std::vector<Trajectory> objects = GenerateRandomDataset(config);
  QuerySetConfig query_config = SmallSnapshotSet();
  query_config.count = 30;
  query_config.time_domain = 200;
  const std::vector<STQuery> workload = GenerateQuerySet(query_config);

  SplitAdvisorOptions options;
  options.time_domain = 200;
  const std::vector<int64_t> candidates = {0, 150, 450};
  const SplitAdvice advice = SplitAdvisor::ChooseBySampling(
      objects, candidates, /*sample_fraction=*/0.5, workload,
      /*max_queries=*/30, IndexKind::kPprTree, options, /*seed=*/5);
  ASSERT_EQ(advice.evaluated.size(), 3u);
  // The chosen budget must be one of the candidates with the minimum
  // measured cost.
  double best = advice.evaluated[0].second;
  for (const auto& [budget, cost] : advice.evaluated) {
    best = std::min(best, cost);
  }
  EXPECT_DOUBLE_EQ(advice.estimated_cost, best);
}

}  // namespace
}  // namespace stindex
