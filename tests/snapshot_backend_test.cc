// Differential tests for the zero-copy mmap snapshot backend: a tree
// packed into a read-only snapshot must answer every query byte-
// identically and with identical per-query protocol-mode miss counts to
// the in-memory store, the MemoryPageBackend and the FilePageBackend, at
// every thread count — packing remaps page ids through a bijection, and
// LRU behaviour depends only on the equality structure of the access
// sequence. The suite also covers the pread fallback, a LiveTier whose
// historical tree was packed mid-stream, and open-time corruption
// detection (truncation, bad magic, version skew, bit flips, manifest
// and extent mismatches), extending the storage_fault_test.cc patterns
// to the snapshot path.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/distribute.h"
#include "core/split_pipeline.h"
#include "datagen/query_gen.h"
#include "datagen/random_dataset.h"
#include "live/live_tier.h"
#include "pprtree/ppr_tree.h"
#include "rstar/rstar_tree.h"
#include "storage/file_backend.h"
#include "storage/page_backend.h"
#include "storage/page_codec.h"
#include "storage/shared_buffer_pool.h"
#include "storage/snapshot_file.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace stindex {
namespace {

constexpr Time kTimeDomain = 1000;

struct QueryOutcome {
  std::vector<uint64_t> results;
  uint64_t misses = 0;

  bool operator==(const QueryOutcome& other) const {
    return results == other.results && misses == other.misses;
  }
};

std::vector<SegmentRecord> MakeRecords() {
  RandomDatasetConfig config;
  config.num_objects = 300;
  config.seed = 42;
  config.time_domain = kTimeDomain;
  const std::vector<Trajectory> objects = GenerateRandomDataset(config);
  const std::vector<VolumeCurve> curves =
      ComputeVolumeCurves(objects, /*k_max=*/16, SplitMethod::kMerge, 1);
  const Distribution dist =
      DistributeLAGreedy(curves, static_cast<int64_t>(objects.size()), 1);
  return BuildSegments(objects, dist.splits, SplitMethod::kMerge, 1);
}

std::vector<STQuery> MakeQueries() {
  QuerySetConfig config = MixedSnapshotSet();
  config.count = 48;
  config.time_domain = kTimeDomain;
  std::vector<STQuery> queries = GenerateQuerySet(config);
  QuerySetConfig ranges = SmallRangeSet();
  ranges.count = 24;
  ranges.time_domain = kTimeDomain;
  for (const STQuery& query : GenerateQuerySet(ranges)) {
    queries.push_back(query);
  }
  return queries;
}

std::string SnapPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name + ".stsnap";
}

std::unique_ptr<PageBackend> MakeFileBackend(const std::string& name) {
  Result<std::unique_ptr<FilePageBackend>> backend =
      FilePageBackend::Create(::testing::TempDir() + "/" + name + ".stpages");
  EXPECT_TRUE(backend.ok()) << backend.status().ToString();
  return std::move(backend).value();
}

template <typename RunQuery>
std::vector<QueryOutcome> RunAll(const std::vector<STQuery>& queries,
                                 int num_threads, const RunQuery& run_query) {
  std::vector<QueryOutcome> outcomes(queries.size());
  ParallelFor(num_threads, queries.size(),
              [&](size_t /*chunk*/, size_t begin, size_t end) {
                for (size_t q = begin; q < end; ++q) {
                  outcomes[q] = run_query(queries[q]);
                }
              });
  return outcomes;
}

std::vector<QueryOutcome> RunPpr(const PprTree& tree,
                                 const std::vector<STQuery>& queries,
                                 int num_threads) {
  return RunAll(queries, num_threads, [&tree](const STQuery& query) {
    std::unique_ptr<BufferPool> buffer = tree.NewQueryBuffer();
    std::vector<PprDataId> results;
    if (query.IsSnapshot()) {
      tree.SnapshotQuery(query.area, query.range.start, buffer.get(),
                         &results);
    } else {
      tree.IntervalQuery(query.area, query.range, buffer.get(), &results);
    }
    QueryOutcome outcome;
    outcome.results.assign(results.begin(), results.end());
    outcome.misses = buffer->stats().misses;
    return outcome;
  });
}

std::vector<QueryOutcome> RunRStar(const RStarTree& tree,
                                   const std::vector<STQuery>& queries,
                                   int num_threads) {
  return RunAll(queries, num_threads, [&tree](const STQuery& query) {
    std::unique_ptr<BufferPool> buffer = tree.NewQueryBuffer();
    std::vector<DataId> results;
    tree.Search(QueryToBox(query, 0, kTimeDomain), buffer.get(), &results);
    QueryOutcome outcome;
    outcome.results.assign(results.begin(), results.end());
    outcome.misses = buffer->stats().misses;
    return outcome;
  });
}

// The fig15/17/18 driver shape: one shared pool, per-chunk Sessions
// running the paper's per-query-reset protocol.
template <typename RunQuery>
std::vector<QueryOutcome> RunShared(const std::vector<STQuery>& queries,
                                    int num_threads, SharedBufferPool* pool,
                                    const RunQuery& run_query) {
  std::vector<QueryOutcome> outcomes(queries.size());
  const size_t protocol_pages = pool->capacity();
  ParallelFor(num_threads, queries.size(),
              [&](size_t /*chunk*/, size_t begin, size_t end) {
                SharedBufferPool::Session session(pool, protocol_pages);
                for (size_t q = begin; q < end; ++q) {
                  session.ResetCache();
                  session.ResetStats();
                  outcomes[q] = run_query(queries[q], &session);
                  outcomes[q].misses = session.stats().misses;
                }
              });
  return outcomes;
}

std::vector<QueryOutcome> RunPprShared(const PprTree& tree,
                                       const std::vector<STQuery>& queries,
                                       int num_threads) {
  const std::unique_ptr<SharedBufferPool> pool = tree.NewSharedQueryPool();
  return RunShared(queries, num_threads, pool.get(),
                   [&tree](const STQuery& query, PageCache* buffer) {
                     std::vector<PprDataId> results;
                     if (query.IsSnapshot()) {
                       tree.SnapshotQuery(query.area, query.range.start,
                                          buffer, &results);
                     } else {
                       tree.IntervalQuery(query.area, query.range, buffer,
                                          &results);
                     }
                     QueryOutcome outcome;
                     outcome.results.assign(results.begin(), results.end());
                     return outcome;
                   });
}

std::vector<QueryOutcome> RunRStarShared(const RStarTree& tree,
                                         const std::vector<STQuery>& queries,
                                         int num_threads) {
  const std::unique_ptr<SharedBufferPool> pool = tree.NewSharedQueryPool();
  return RunShared(queries, num_threads, pool.get(),
                   [&tree](const STQuery& query, PageCache* buffer) {
                     std::vector<DataId> results;
                     tree.Search(QueryToBox(query, 0, kTimeDomain), buffer,
                                 &results);
                     QueryOutcome outcome;
                     outcome.results.assign(results.begin(), results.end());
                     return outcome;
                   });
}

uint64_t Metric(const char* name) {
  return MetricRegistry::Global().GetCounter(name)->Value();
}

uint64_t TotalMisses(const std::vector<QueryOutcome>& outcomes) {
  uint64_t total = 0;
  for (const QueryOutcome& outcome : outcomes) total += outcome.misses;
  return total;
}

TEST(SnapshotBackendTest, PprSnapshotIdenticalAcrossBackendsAndThreads) {
  const std::vector<SegmentRecord> records = MakeRecords();
  const std::vector<STQuery> queries = MakeQueries();

  const std::unique_ptr<PprTree> store_tree = BuildPprTree(records);
  const std::unique_ptr<PprTree> memory_tree = BuildPprTree(records);
  ASSERT_TRUE(
      memory_tree->AttachBackend(std::make_unique<MemoryPageBackend>()).ok());
  const std::unique_ptr<PprTree> file_tree = BuildPprTree(records);
  ASSERT_TRUE(file_tree->AttachBackend(MakeFileBackend("snap_ppr_file")).ok());
  const std::unique_ptr<PprTree> packed = BuildPprTree(records);
  ASSERT_TRUE(packed->PackSnapshot(SnapPath("snap_ppr")).ok());
  ASSERT_NE(packed->backend(), nullptr);
  EXPECT_EQ(packed->backend()->Name(), "mmap");
  const std::unique_ptr<PprTree> pread_tree = BuildPprTree(records);
  SnapshotFile::Options pread_options;
  pread_options.force_pread = true;
  const uint64_t fallbacks_before = Metric("backend.mmap.fallback_opens");
  ASSERT_TRUE(
      pread_tree->PackSnapshot(SnapPath("snap_ppr_pread"), pread_options)
          .ok());
  EXPECT_EQ(Metric("backend.mmap.fallback_opens"), fallbacks_before + 1);
  EXPECT_FALSE(static_cast<const MmapSnapshotBackend*>(pread_tree->backend())
                   ->file()
                   .mapped());

  const std::vector<QueryOutcome> baseline = RunPpr(*store_tree, queries, 1);
  ASSERT_GT(TotalMisses(baseline), 0u);

  const uint64_t file_reads_before = Metric("backend.file.reads");
  const uint64_t mmap_reads_before = Metric("backend.mmap.reads");
  const uint64_t borrows_before = Metric("backend.mmap.borrows");
  for (const int threads : {1, 2, 7, 16}) {
    EXPECT_EQ(RunPpr(*memory_tree, queries, threads), baseline)
        << "memory backend, threads=" << threads;
    EXPECT_EQ(RunPpr(*packed, queries, threads), baseline)
        << "mmap backend, threads=" << threads;
    EXPECT_EQ(RunPpr(*pread_tree, queries, threads), baseline)
        << "pread fallback, threads=" << threads;
    EXPECT_EQ(RunPprShared(*packed, queries, threads), baseline)
        << "mmap backend, shared pool, threads=" << threads;
  }
  // The mapped runs were zero-copy: every miss was served by borrowing
  // the mapped span, never a read into a frame — and never a file-backend
  // read (the warm-path acceptance gate for --backend=mmap).
  EXPECT_EQ(Metric("backend.file.reads"), file_reads_before);
  EXPECT_EQ(Metric("backend.mmap.reads"),
            mmap_reads_before + 4 * TotalMisses(baseline));
  EXPECT_GT(Metric("backend.mmap.borrows"), borrows_before);
  // file_tree is the control: identical through a real page file too.
  EXPECT_EQ(RunPpr(*file_tree, queries, 7), baseline);
}

TEST(SnapshotBackendTest, RStarSnapshotIdenticalAcrossBackendsAndThreads) {
  const std::vector<SegmentRecord> records = MakeRecords();
  const std::vector<STQuery> queries = MakeQueries();
  const std::vector<Box3D> boxes = SegmentsToBoxes(records, 0, kTimeDomain);

  // Deletes leave holes in the store's id space, so the packer's
  // live-id collection and remap are both exercised.
  const auto build = [&boxes] {
    auto tree = std::make_unique<RStarTree>();
    for (size_t i = 0; i < boxes.size(); ++i) {
      tree->Insert(boxes[i], static_cast<DataId>(i));
    }
    for (size_t i = 0; i < boxes.size(); i += 5) {
      EXPECT_TRUE(tree->Delete(boxes[i], static_cast<DataId>(i)));
    }
    return tree;
  };
  const std::unique_ptr<RStarTree> store_tree = build();
  const std::unique_ptr<RStarTree> memory_tree = build();
  ASSERT_TRUE(
      memory_tree->AttachBackend(std::make_unique<MemoryPageBackend>()).ok());
  const std::unique_ptr<RStarTree> file_tree = build();
  ASSERT_TRUE(
      file_tree->AttachBackend(MakeFileBackend("snap_rstar_file")).ok());
  const std::unique_ptr<RStarTree> packed = build();
  ASSERT_TRUE(packed->PackSnapshot(SnapPath("snap_rstar")).ok());
  const std::unique_ptr<RStarTree> pread_tree = build();
  SnapshotFile::Options pread_options;
  pread_options.force_pread = true;
  ASSERT_TRUE(
      pread_tree->PackSnapshot(SnapPath("snap_rstar_pread"), pread_options)
          .ok());

  const std::vector<QueryOutcome> baseline = RunRStar(*store_tree, queries, 1);
  ASSERT_GT(TotalMisses(baseline), 0u);

  const uint64_t file_reads_before = Metric("backend.file.reads");
  for (const int threads : {1, 2, 7, 16}) {
    EXPECT_EQ(RunRStar(*memory_tree, queries, threads), baseline)
        << "memory backend, threads=" << threads;
    EXPECT_EQ(RunRStar(*packed, queries, threads), baseline)
        << "mmap backend, threads=" << threads;
    EXPECT_EQ(RunRStar(*pread_tree, queries, threads), baseline)
        << "pread fallback, threads=" << threads;
    EXPECT_EQ(RunRStarShared(*packed, queries, threads), baseline)
        << "mmap backend, shared pool, threads=" << threads;
  }
  EXPECT_EQ(Metric("backend.file.reads"), file_reads_before);
  EXPECT_EQ(RunRStar(*file_tree, queries, 7), baseline);
}

TEST(SnapshotBackendTest, PackedTreeRefusesMutation) {
  const std::vector<SegmentRecord> records = MakeRecords();
  const std::unique_ptr<RStarTree> tree = std::make_unique<RStarTree>();
  const std::vector<Box3D> boxes = SegmentsToBoxes(records, 0, kTimeDomain);
  for (size_t i = 0; i < 50; ++i) {
    tree->Insert(boxes[i], static_cast<DataId>(i));
  }
  ASSERT_TRUE(tree->PackSnapshot(SnapPath("snap_frozen")).ok());
  EXPECT_DEATH(tree->Insert(boxes[0], 999), "frozen");
  // A second pack is a programming error too: the tree already owns a
  // backend.
  EXPECT_DEATH(
      static_cast<void>(tree->PackSnapshot(SnapPath("snap_frozen2"))),
      "backend already attached");
}

TEST(SnapshotBackendTest, EmptySnapshotRoundTrips) {
  PprTree tree;
  ASSERT_TRUE(tree.PackSnapshot(SnapPath("snap_empty")).ok());
  Result<std::unique_ptr<MmapSnapshotBackend>> backend =
      MmapSnapshotBackend::Open(SnapPath("snap_empty"));
  ASSERT_TRUE(backend.ok()) << backend.status().ToString();
  EXPECT_EQ(backend.value()->SlotCount(), 0u);
  std::vector<PprDataId> results;
  tree.IntervalQuery(Rect2D(0, 0, 1, 1), TimeInterval(0, kTimeDomain),
                     &results);
  EXPECT_TRUE(results.empty());
}

// A LiveTier whose historical tree was packed mid-stream (and again
// after Finish) must answer exactly like a never-packed reference run of
// the same schedule: the frozen layers plus the fresh active tree plus
// the frozen-delete clipping reconstruct the single-tree answers.
TEST(SnapshotBackendTest, LiveTierPackedMidStreamMatchesReference) {
  RandomDatasetConfig config;
  config.num_objects = 300;
  config.seed = 42;
  config.time_domain = kTimeDomain;
  const std::vector<Trajectory> objects = GenerateRandomDataset(config);
  const std::vector<LiveObservation> stream = MakeObservationStream(objects);
  const std::vector<STQuery> queries = MakeQueries();

  LiveTierOptions options;
  options.index.capacity = 24;
  options.index.buffer = 4000;

  const auto run = [&](size_t pack_at,
                       bool pack_after_finish) -> std::unique_ptr<LiveTier> {
    Result<std::unique_ptr<LiveTier>> tier =
        LiveTier::Open(options, std::make_unique<MemoryPageBackend>());
    EXPECT_TRUE(tier.ok()) << tier.status().ToString();
    static int pack_counter = 0;
    for (size_t i = 0; i < stream.size(); ++i) {
      EXPECT_TRUE(tier.value()->Apply(stream[i]).ok());
      if ((i + 1) % 64 == 0) EXPECT_TRUE(tier.value()->Commit().ok());
      if (pack_at != 0 && i + 1 == pack_at) {
        EXPECT_TRUE(tier.value()
                        ->PackHistorical(SnapPath(
                            "snap_live_" + std::to_string(pack_counter++)))
                        .ok());
      }
    }
    EXPECT_TRUE(tier.value()->Finish().ok());
    if (pack_after_finish) {
      EXPECT_TRUE(tier.value()
                      ->PackHistorical(SnapPath(
                          "snap_live_" + std::to_string(pack_counter++)))
                      .ok());
    }
    return std::move(tier).value();
  };

  const std::unique_ptr<LiveTier> reference = run(0, false);
  ASSERT_EQ(reference->frozen_layers(), 0u);
  const std::unique_ptr<LiveTier> packed =
      run(stream.size() / 2, /*pack_after_finish=*/true);
  ASSERT_EQ(packed->frozen_layers(), 2u);

  for (size_t q = 0; q < queries.size(); ++q) {
    std::vector<ObjectId> want;
    reference->IntervalQuery(queries[q].area, queries[q].range, &want);
    std::vector<ObjectId> got;
    packed->IntervalQuery(queries[q].area, queries[q].range, &got);
    EXPECT_EQ(got, want) << "interval query " << q;

    std::vector<ObjectId> want_snap;
    reference->SnapshotQuery(queries[q].area, queries[q].range.start,
                             &want_snap);
    std::vector<ObjectId> got_snap;
    packed->SnapshotQuery(queries[q].area, queries[q].range.start, &got_snap);
    EXPECT_EQ(got_snap, want_snap) << "snapshot query " << q;
  }
}

// A mid-stream pack survives a checkpoint + recovery cycle: the layered
// checkpoint restores every frozen layer (as an in-memory tree — the
// answers, not the mmap, are what recovery preserves) and the frozen
// deletes keep clipping.
TEST(SnapshotBackendTest, LiveTierPackSurvivesCheckpointRecovery) {
  RandomDatasetConfig config;
  config.num_objects = 120;
  config.seed = 7;
  config.time_domain = 400;
  const std::vector<Trajectory> objects = GenerateRandomDataset(config);
  const std::vector<LiveObservation> stream = MakeObservationStream(objects);

  LiveTierOptions options;
  options.index.capacity = 16;

  const std::string wal_path = ::testing::TempDir() + "/snap_live_wal.stpages";
  std::remove(wal_path.c_str());
  Result<std::unique_ptr<FilePageBackend>> wal =
      FilePageBackend::Create(wal_path);
  ASSERT_TRUE(wal.ok());
  Result<std::unique_ptr<LiveTier>> tier =
      LiveTier::Open(options, std::move(wal).value());
  ASSERT_TRUE(tier.ok()) << tier.status().ToString();

  const size_t half = stream.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(tier.value()->Apply(stream[i]).ok());
    if ((i + 1) % 32 == 0) ASSERT_TRUE(tier.value()->Commit().ok());
  }
  ASSERT_TRUE(
      tier.value()->PackHistorical(SnapPath("snap_live_ckpt")).ok());
  ASSERT_EQ(tier.value()->frozen_layers(), 1u);
  // The checkpoint persists the layering; recovery must restore it.
  ASSERT_TRUE(tier.value()->Checkpoint().ok());
  for (size_t i = half; i < stream.size(); ++i) {
    ASSERT_TRUE(tier.value()->Apply(stream[i]).ok());
  }
  ASSERT_TRUE(tier.value()->Finish().ok());
  const std::vector<STQuery> queries = MakeQueries();
  std::vector<std::vector<ObjectId>> want(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    tier.value()->IntervalQuery(queries[q].area, queries[q].range, &want[q]);
  }
  tier.value().reset();

  Result<std::unique_ptr<FilePageBackend>> reopened =
      FilePageBackend::Open(wal_path);
  ASSERT_TRUE(reopened.ok());
  tier = LiveTier::Open(options, std::move(reopened).value());
  ASSERT_TRUE(tier.ok()) << tier.status().ToString();
  EXPECT_EQ(tier.value()->frozen_layers(), 1u);
  // Replay is idempotent; finish the recovered stream and compare.
  for (const LiveObservation& update : stream) {
    ASSERT_TRUE(tier.value()->Apply(update).ok());
  }
  ASSERT_TRUE(tier.value()->Finish().ok());
  for (size_t q = 0; q < queries.size(); ++q) {
    std::vector<ObjectId> got;
    tier.value()->IntervalQuery(queries[q].area, queries[q].range, &got);
    EXPECT_EQ(got, want[q]) << "query " << q;
  }
  std::remove(wal_path.c_str());
}

// --- corruption / fault coverage ------------------------------------------

class SnapshotCorruptionTest : public ::testing::Test {
 protected:
  // Packs a small PPR-tree and releases it, leaving just the file.
  std::string PackFixture(const std::string& name) {
    const std::string path = SnapPath(name);
    const std::vector<SegmentRecord> records = MakeRecords();
    const std::unique_ptr<PprTree> tree = BuildPprTree(records);
    EXPECT_TRUE(tree->PackSnapshot(path).ok());
    node_count_ = tree->backend()->SlotCount();
    EXPECT_GT(node_count_, 2u);
    return path;
  }

  static std::vector<uint8_t> ReadFile(const std::string& path) {
    std::vector<uint8_t> bytes;
    FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    bytes.resize(static_cast<size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
    return bytes;
  }

  static void WriteFile(const std::string& path,
                        const std::vector<uint8_t>& bytes) {
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }

  static Status OpenStatus(const std::string& path) {
    Result<std::unique_ptr<MmapSnapshotBackend>> backend =
        MmapSnapshotBackend::Open(path);
    return backend.ok() ? Status::OK() : backend.status();
  }

  size_t node_count_ = 0;
};

TEST_F(SnapshotCorruptionTest, TruncatedSuperblockFailsOpen) {
  const std::string path = PackFixture("corrupt_trunc_super");
  ASSERT_EQ(truncate(path.c_str(), 100), 0);
  const Status status = OpenStatus(path);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("truncated snapshot"), std::string::npos)
      << status.ToString();
}

TEST_F(SnapshotCorruptionTest, TruncatedDataFailsOpen) {
  const std::string path = PackFixture("corrupt_trunc_data");
  // Drop the trailing manifest page: the superblock-implied size check
  // fires before any page is read.
  const std::vector<uint8_t> bytes = ReadFile(path);
  ASSERT_EQ(truncate(path.c_str(),
                     static_cast<off_t>(bytes.size() - kPageSize)),
            0);
  const Status status = OpenStatus(path);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("superblock implies"), std::string::npos)
      << status.ToString();
}

TEST_F(SnapshotCorruptionTest, BadMagicFailsOpen) {
  const std::string path = PackFixture("corrupt_magic");
  std::vector<uint8_t> bytes = ReadFile(path);
  // The magic is peeked before the envelope checksum, so a stray file
  // reports "not a snapshot" rather than "corrupt".
  bytes[kPageEnvelopeBytes] ^= 0xff;
  WriteFile(path, bytes);
  const Status status = OpenStatus(path);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("not a stindex snapshot"),
            std::string::npos)
      << status.ToString();
}

TEST_F(SnapshotCorruptionTest, VersionSkewFailsOpen) {
  const std::string path = PackFixture("corrupt_version");
  std::vector<uint8_t> bytes = ReadFile(path);
  // Payload layout: magic u64, then version u32. Bump it and reseal so
  // the envelope is valid and the version check itself fires.
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + kPageEnvelopeBytes + 8,
              sizeof(version));
  version += 1;
  std::memcpy(bytes.data() + kPageEnvelopeBytes + 8, &version,
              sizeof(version));
  SealPage(bytes.data(), PageKind::kSnapshotSuperblock);
  WriteFile(path, bytes);
  const Status status = OpenStatus(path);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("unsupported snapshot version"),
            std::string::npos)
      << status.ToString();
}

TEST_F(SnapshotCorruptionTest, BitFlippedNodeNamesThePage) {
  const std::string path = PackFixture("corrupt_node");
  std::vector<uint8_t> bytes = ReadFile(path);
  // Flip one payload byte of node slot 2 (file page 3).
  bytes[3 * kPageSize + kPageEnvelopeBytes + 17] ^= 0x01;
  WriteFile(path, bytes);
  const Status status = OpenStatus(path);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("checksum mismatch on page 2"),
            std::string::npos)
      << status.ToString();
}

TEST_F(SnapshotCorruptionTest, ManifestMismatchFailsOpen) {
  const std::string path = PackFixture("corrupt_manifest");
  std::vector<uint8_t> bytes = ReadFile(path);
  // Rewrite the first manifest entry with a valid envelope: the digest
  // in the superblock no longer matches.
  const size_t manifest_off = (1 + node_count_) * kPageSize;
  bytes[manifest_off + kPageEnvelopeBytes] ^= 0xff;
  SealPage(bytes.data() + manifest_off, PageKind::kSnapshotManifest);
  WriteFile(path, bytes);
  const Status status = OpenStatus(path);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("manifest digest mismatch"),
            std::string::npos)
      << status.ToString();
}

TEST_F(SnapshotCorruptionTest, ExtentMismatchFailsOpen) {
  const std::string path = PackFixture("corrupt_extent");
  std::vector<uint8_t> bytes = ReadFile(path);
  // Payload: magic u64, version u32, page_size u32, node_count u64,
  // level_count u32, manifest_pages u32, manifest_digest u32, then the
  // extents. Grow level 0's count so the levels no longer tile the slots.
  const size_t extent_count_off = kPageEnvelopeBytes + 8 + 4 + 4 + 8 + 4 + 4 +
                                  4 + sizeof(uint32_t);
  uint32_t count = 0;
  std::memcpy(&count, bytes.data() + extent_count_off, sizeof(count));
  count += 1;
  std::memcpy(bytes.data() + extent_count_off, &count, sizeof(count));
  SealPage(bytes.data(), PageKind::kSnapshotSuperblock);
  WriteFile(path, bytes);
  const Status status = OpenStatus(path);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("corrupt superblock"), std::string::npos)
      << status.ToString();
}

TEST_F(SnapshotCorruptionTest, CorruptSuperblockEnvelopeFailsOpen) {
  const std::string path = PackFixture("corrupt_super_env");
  std::vector<uint8_t> bytes = ReadFile(path);
  // Damage a payload byte past the magic without resealing: the envelope
  // checksum catches it.
  bytes[kPageEnvelopeBytes + 20] ^= 0xff;
  WriteFile(path, bytes);
  const Status status = OpenStatus(path);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("corrupt superblock"), std::string::npos)
      << status.ToString();
}

TEST_F(SnapshotCorruptionTest, CorruptionDetectedOnPreadFallbackToo) {
  const std::string path = PackFixture("corrupt_pread");
  std::vector<uint8_t> bytes = ReadFile(path);
  bytes[1 * kPageSize + kPageEnvelopeBytes + 3] ^= 0x10;  // node slot 0
  WriteFile(path, bytes);
  SnapshotFile::Options options;
  options.force_pread = true;
  Result<std::unique_ptr<MmapSnapshotBackend>> backend =
      MmapSnapshotBackend::Open(path, options);
  ASSERT_FALSE(backend.ok());
  EXPECT_NE(backend.status().ToString().find("checksum mismatch on page 0"),
            std::string::npos)
      << backend.status().ToString();
}

TEST_F(SnapshotCorruptionTest, ReadBeyondNodeCountIsOutOfRange) {
  const std::string path = PackFixture("corrupt_range");
  Result<std::unique_ptr<MmapSnapshotBackend>> backend =
      MmapSnapshotBackend::Open(path);
  ASSERT_TRUE(backend.ok()) << backend.status().ToString();
  uint8_t buffer[kPageSize];
  EXPECT_FALSE(
      backend.value()->Read(static_cast<PageId>(node_count_), buffer).ok());
  EXPECT_EQ(backend.value()->BorrowPage(static_cast<PageId>(node_count_)),
            nullptr);
  // Writes and frees are refused outright: the snapshot is immutable.
  EXPECT_FALSE(backend.value()->Write(0, buffer).ok());
  EXPECT_FALSE(backend.value()->Free(0).ok());
}

}  // namespace
}  // namespace stindex
