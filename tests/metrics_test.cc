#include "util/metrics.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace stindex {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(CounterTest, ConcurrentAddsAreLossless) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(counter.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAndSetMax) {
  Gauge gauge;
  gauge.Set(7);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.SetMax(3);  // lower: no effect
  EXPECT_EQ(gauge.Value(), 7);
  gauge.SetMax(11);
  EXPECT_EQ(gauge.Value(), 11);
}

TEST(HistogramTest, EmptySnapshotIsZero) {
  Histogram histogram;
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_EQ(snapshot.sum, 0.0);
  EXPECT_EQ(snapshot.p50, 0.0);
  EXPECT_EQ(snapshot.p99, 0.0);
}

TEST(HistogramTest, BucketBoundariesDouble) {
  for (size_t i = 1; i < Histogram::kBucketCount; ++i) {
    EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(i),
                     2.0 * Histogram::BucketUpperBound(i - 1));
  }
  // A value sits in the bucket whose upper bound is the first one >= it.
  for (size_t i = 0; i < Histogram::kBucketCount; ++i) {
    const double bound = Histogram::BucketUpperBound(i);
    EXPECT_EQ(Histogram::BucketIndex(bound), i);
  }
}

TEST(HistogramTest, NonPositiveValuesLandInBucketZero) {
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(-5.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1e-300), 0u);
}

TEST(HistogramTest, PercentilesAreBucketAccurate) {
  Histogram histogram;
  for (int i = 1; i <= 100; ++i) histogram.Record(static_cast<double>(i));
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 100u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 5050.0);
  EXPECT_DOUBLE_EQ(snapshot.min, 1.0);
  EXPECT_DOUBLE_EQ(snapshot.max, 100.0);
  // Bucket-upper-bound semantics: within a factor of two above the true
  // percentile and never beyond the observed extremes.
  EXPECT_GE(snapshot.p50, 50.0);
  EXPECT_LE(snapshot.p50, 100.0);
  EXPECT_GE(snapshot.p99, 99.0);
  EXPECT_LE(snapshot.p99, 100.0);
}

TEST(HistogramTest, SingleValuePercentilesAreExact) {
  Histogram histogram;
  histogram.Record(3.5);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.p50, 3.5);
  EXPECT_DOUBLE_EQ(snapshot.p90, 3.5);
  EXPECT_DOUBLE_EQ(snapshot.p95, 3.5);
  EXPECT_DOUBLE_EQ(snapshot.p99, 3.5);
}

TEST(HistogramTest, ValueAtPercentileEdgeCases) {
  Histogram empty;
  EXPECT_EQ(empty.ValueAtPercentile(0.0), 0.0);
  EXPECT_EQ(empty.ValueAtPercentile(50.0), 0.0);
  EXPECT_EQ(empty.ValueAtPercentile(100.0), 0.0);

  Histogram histogram;
  for (int i = 1; i <= 1000; ++i) histogram.Record(static_cast<double>(i));
  // p=0 and p=100 are exact (the recorded extremes), regardless of which
  // bucket the extremes fall in.
  EXPECT_DOUBLE_EQ(histogram.ValueAtPercentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(histogram.ValueAtPercentile(100.0), 1000.0);
  // Interior percentiles are bucket-accurate: at or above the true value
  // and within a factor of two, never beyond the max.
  for (const double p : {25.0, 50.0, 90.0, 95.0, 99.0}) {
    const double truth = p / 100.0 * 1000.0;
    const double reported = histogram.ValueAtPercentile(p);
    EXPECT_GE(reported, truth) << "p" << p;
    EXPECT_LE(reported, std::min(2.0 * truth, 1000.0)) << "p" << p;
  }
  // Monotone in p.
  double last = 0.0;
  for (const double p : {0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
    const double value = histogram.ValueAtPercentile(p);
    EXPECT_GE(value, last);
    last = value;
  }
}

TEST(HistogramTest, PercentileSpellingMatchesValueAtPercentile) {
  Histogram histogram;
  for (int i = 1; i <= 64; ++i) histogram.Record(static_cast<double>(i));
  for (const double p : {0.0, 42.0, 95.0, 100.0}) {
    EXPECT_EQ(histogram.Percentile(p), histogram.ValueAtPercentile(p));
  }
}

TEST(HistogramTest, MergeEqualsSerialRecording) {
  // The determinism contract: merging per-chunk shards in chunk order
  // must reproduce the serial histogram exactly (bit-equal sum).
  const std::vector<std::vector<double>> chunks = {
      {0.1, 0.2, 0.3}, {1e-7, 123.0}, {}, {5.5, 0.25, 1e6}};

  Histogram serial;
  for (const auto& chunk : chunks) {
    for (double value : chunk) serial.Record(value);
  }

  std::vector<Histogram> shards(chunks.size());
  for (size_t c = 0; c < chunks.size(); ++c) {
    for (double value : chunks[c]) shards[c].Record(value);
  }
  HistogramMetric merged;
  MergeShards(shards, &merged);

  const HistogramSnapshot a = serial.Snapshot();
  const HistogramSnapshot b = merged.Value().Snapshot();
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);  // bit-equal, not just close
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.p50, b.p50);
  EXPECT_EQ(a.p90, b.p90);
  EXPECT_EQ(a.p99, b.p99);
}

TEST(HistogramTest, NanRecordsAsZero) {
  Histogram histogram;
  histogram.Record(std::nan(""));
  EXPECT_EQ(histogram.Count(), 1u);
  EXPECT_EQ(histogram.Sum(), 0.0);
}

TEST(MetricRegistryTest, GetReturnsStablePointers) {
  MetricRegistry& registry = MetricRegistry::Global();
  Counter* counter = registry.GetCounter("test.registry.counter");
  EXPECT_EQ(counter, registry.GetCounter("test.registry.counter"));
  Gauge* gauge = registry.GetGauge("test.registry.gauge");
  EXPECT_EQ(gauge, registry.GetGauge("test.registry.gauge"));
  HistogramMetric* histogram = registry.GetHistogram("test.registry.histogram");
  EXPECT_EQ(histogram, registry.GetHistogram("test.registry.histogram"));

  counter->Add(5);
  registry.ResetForTest();
  EXPECT_EQ(counter->Value(), 0u);
  // Reset keeps the registration.
  EXPECT_EQ(counter, registry.GetCounter("test.registry.counter"));
}

TEST(MetricRegistryTest, SnapshotIsSortedByName) {
  MetricRegistry& registry = MetricRegistry::Global();
  registry.GetCounter("test.snapshot.zebra")->Add(1);
  registry.GetCounter("test.snapshot.apple")->Add(2);
  const MetricsSnapshot snapshot = registry.Snapshot();
  for (size_t i = 1; i < snapshot.counters.size(); ++i) {
    EXPECT_LT(snapshot.counters[i - 1].first, snapshot.counters[i].first);
  }
  for (size_t i = 1; i < snapshot.gauges.size(); ++i) {
    EXPECT_LT(snapshot.gauges[i - 1].first, snapshot.gauges[i].first);
  }
  for (size_t i = 1; i < snapshot.histograms.size(); ++i) {
    EXPECT_LT(snapshot.histograms[i - 1].first, snapshot.histograms[i].first);
  }
}

TEST(ScopedTimerTest, RecordsOneReading) {
  MetricRegistry& registry = MetricRegistry::Global();
  HistogramMetric* histogram = registry.GetHistogram("test.scoped.timer");
  const uint64_t before = histogram->Value().Count();
  { ScopedTimer timer("test.scoped.timer"); }
  const Histogram after = histogram->Value();
  EXPECT_EQ(after.Count(), before + 1);
  EXPECT_GE(after.Sum(), 0.0);
}

// DeltaSince recovers exactly the readings recorded between two captures
// of the same histogram — the core of the sliding window.
TEST(HistogramTest, DeltaSinceIsolatesWindowReadings) {
  Histogram histogram;
  histogram.Record(1.0);
  histogram.Record(100.0);
  const Histogram earlier = histogram;  // capture
  histogram.Record(4.0);
  histogram.Record(4.0);
  histogram.Record(8.0);

  const Histogram delta = histogram.DeltaSince(earlier);
  EXPECT_EQ(delta.Count(), 3u);
  EXPECT_DOUBLE_EQ(delta.Sum(), 16.0);
  // Window percentiles reflect only the window readings: the cumulative
  // p100 is 100, the window's is 8 (bucket-accurate, and 8 = 2^3 is an
  // exact bucket bound).
  EXPECT_EQ(delta.ValueAtPercentile(100.0), 8.0);
  EXPECT_LE(delta.ValueAtPercentile(50.0), 4.0);
}

TEST(HistogramTest, DeltaSinceOfIdenticalCapturesIsEmpty) {
  Histogram histogram;
  histogram.Record(3.0);
  const Histogram delta = histogram.DeltaSince(histogram);
  EXPECT_EQ(delta.Count(), 0u);
  EXPECT_DOUBLE_EQ(delta.Sum(), 0.0);
  EXPECT_EQ(delta.ValueAtPercentile(99.0), 0.0);
}

TEST(MetricsWindowTest, NeedsTwoEpochsForASnapshot) {
  MetricRegistry registry;
  MetricsWindow window(4, &registry);
  EXPECT_EQ(window.WindowSnapshot().epochs, 0u);
  window.Advance();
  EXPECT_EQ(window.WindowSnapshot().epochs, 0u);  // one boundary = no span
  window.Advance();
  EXPECT_EQ(window.WindowSnapshot().epochs, 1u);
}

TEST(MetricsWindowTest, CounterRatesAndWindowPercentiles) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("w.counter");
  HistogramMetric* histogram = registry.GetHistogram("w.hist");
  histogram->Record(512.0);  // pre-window reading, must not leak in
  counter->Add(10);

  MetricsWindow window(4, &registry);
  window.Advance();
  counter->Add(30);
  histogram->Record(2.0);
  histogram->Record(4.0);
  window.Advance();

  const WindowedMetricsSnapshot snapshot = window.WindowSnapshot();
  ASSERT_EQ(snapshot.counter_rates.size(), 1u);
  EXPECT_EQ(snapshot.counter_rates[0].first, "w.counter");
  // 30 increments over the (tiny but positive) window; rate is
  // scheduling-dependent, the delta is not: rate * seconds == 30.
  EXPECT_GT(snapshot.counter_rates[0].second, 0.0);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  const HistogramSnapshot& hist = snapshot.histograms[0].second;
  EXPECT_EQ(hist.count, 2u);  // the 512 recorded pre-window is excluded
  EXPECT_DOUBLE_EQ(hist.sum, 6.0);
  EXPECT_LE(hist.p99, 4.0);
}

TEST(MetricsWindowTest, RingDropsOldestEpoch) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("w.ring");
  MetricsWindow window(2, &registry);  // spans at most 2 epoch intervals
  window.Advance();          // capture A: 0
  counter->Add(1);
  window.Advance();          // capture B: 1
  counter->Add(2);
  window.Advance();          // capture C: 3
  counter->Add(4);
  window.Advance();          // capture D: 7 — A falls off the ring

  const WindowedMetricsSnapshot snapshot = window.WindowSnapshot();
  EXPECT_EQ(snapshot.epochs, 2u);
  ASSERT_EQ(snapshot.counter_rates.size(), 1u);
  // The window covers B..D: 7 - 1 = 6 increments.
  EXPECT_GT(snapshot.counter_rates[0].second, 0.0);
  EXPECT_NEAR(snapshot.counter_rates[0].second * snapshot.seconds, 6.0, 1e-9);
}

TEST(MetricsWindowTest, CountersBornMidWindowDiffAgainstZero) {
  MetricRegistry registry;
  MetricsWindow window(4, &registry);
  window.Advance();
  registry.GetCounter("w.born.late")->Add(5);
  registry.GetHistogram("w.hist.late")->Record(1.0);
  window.Advance();

  const WindowedMetricsSnapshot snapshot = window.WindowSnapshot();
  ASSERT_EQ(snapshot.counter_rates.size(), 1u);
  EXPECT_NEAR(snapshot.counter_rates[0].second * snapshot.seconds, 5.0, 1e-9);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].second.count, 1u);
}

}  // namespace
}  // namespace stindex
