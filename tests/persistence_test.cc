#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>

#include "pprtree/ppr_tree.h"
#include "util/random.h"

namespace stindex {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::vector<SegmentRecord> RandomRecords(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<SegmentRecord> records;
  for (size_t i = 0; i < count; ++i) {
    SegmentRecord record;
    record.object = static_cast<ObjectId>(i);
    const Time life = rng.UniformInt(1, 40);
    const Time start = rng.UniformInt(0, 200 - life);
    const double x = rng.UniformDouble(0, 0.95);
    const double y = rng.UniformDouble(0, 0.95);
    record.box.rect = Rect2D(x, y, x + rng.UniformDouble(0.005, 0.05),
                             y + rng.UniformDouble(0.005, 0.05));
    record.box.interval = TimeInterval(start, start + life);
    records.push_back(record);
  }
  return records;
}

TEST(PprPersistenceTest, RoundTripAnswersIdentically) {
  const std::vector<SegmentRecord> records = RandomRecords(11, 600);
  std::unique_ptr<PprTree> original = BuildPprTree(records);
  const std::string path = TempPath("tree.ppr");
  ASSERT_TRUE(original->Save(path).ok());

  Result<std::unique_ptr<PprTree>> loaded = PprTree::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  PprTree& restored = *loaded.value();
  restored.CheckInvariants();
  EXPECT_EQ(restored.Size(), original->Size());
  EXPECT_EQ(restored.PageCount(), original->PageCount());
  EXPECT_EQ(restored.NumRoots(), original->NumRoots());
  EXPECT_EQ(restored.AliveCount(), original->AliveCount());

  Rng rng(12);
  std::vector<PprDataId> a, b;
  for (int q = 0; q < 40; ++q) {
    const double x = rng.UniformDouble(0, 0.8);
    const double y = rng.UniformDouble(0, 0.8);
    const Rect2D area(x, y, x + 0.15, y + 0.15);
    const Time t = rng.UniformInt(0, 199);
    original->SnapshotQuery(area, t, &a);
    restored.SnapshotQuery(area, t, &b);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
    const TimeInterval range(t, std::min<Time>(200, t + 15));
    original->IntervalQuery(area, range, &a);
    restored.IntervalQuery(area, range, &b);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

TEST(PprPersistenceTest, LoadedTreeAcceptsFurtherUpdates) {
  PprTree tree;
  for (PprDataId i = 0; i < 120; ++i) {
    tree.Insert(Rect2D(0.01 * static_cast<double>(i % 50), 0.1,
                       0.01 * static_cast<double>(i % 50) + 0.02, 0.15),
                static_cast<Time>(i / 4), i);
  }
  const std::string path = TempPath("live.ppr");
  ASSERT_TRUE(tree.Save(path).ok());
  Result<std::unique_ptr<PprTree>> loaded = PprTree::Load(path);
  ASSERT_TRUE(loaded.ok());
  PprTree& restored = *loaded.value();

  // Continue the evolution where the original left off.
  restored.Insert(Rect2D(0.5, 0.5, 0.55, 0.55), 100, 1000);
  restored.Delete(0, 101);
  restored.CheckInvariants();
  std::vector<PprDataId> results;
  restored.SnapshotQuery(Rect2D(0.45, 0.45, 0.6, 0.6), 150, &results);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], 1000u);
}

TEST(PprPersistenceTest, RejectsGarbageFiles) {
  const std::string path = TempPath("garbage.ppr");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a ppr tree";
  }
  Result<std::unique_ptr<PprTree>> loaded = PprTree::Load(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(PprPersistenceTest, RejectsTruncatedFiles) {
  const std::vector<SegmentRecord> records = RandomRecords(13, 100);
  std::unique_ptr<PprTree> tree = BuildPprTree(records);
  const std::string full_path = TempPath("full.ppr");
  ASSERT_TRUE(tree->Save(full_path).ok());
  // Truncate to half.
  std::ifstream in(full_path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  const std::string cut_path = TempPath("cut.ppr");
  {
    std::ofstream out(cut_path, std::ios::binary);
    out.write(contents.data(),
              static_cast<long>(contents.size() / 2));
  }
  EXPECT_FALSE(PprTree::Load(cut_path).ok());
}

TEST(PprPersistenceTest, MissingFileIsNotFound) {
  Result<std::unique_ptr<PprTree>> loaded =
      PprTree::Load(TempPath("absent.ppr"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace stindex
