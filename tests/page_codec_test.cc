#include <gtest/gtest.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <memory>
#include <string>

#include "storage/file_backend.h"
#include "storage/page_codec.h"

namespace stindex {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(PageCodecTest, RoundTripMixedTypes) {
  std::array<uint8_t, kPageSize> page{};
  PageWriter writer(page.data(), kPageSize);
  writer.Write<int32_t>(-7);
  writer.Write<uint64_t>(0xdeadbeefcafeULL);
  writer.Write(3.14159);
  const char blob[5] = {'a', 'b', 'c', 'd', 'e'};
  writer.WriteBytes(blob, sizeof(blob));
  EXPECT_EQ(writer.used(), 4u + 8u + 8u + 5u);

  PageReader reader(page.data(), kPageSize);
  int32_t i = 0;
  uint64_t u = 0;
  double d = 0.0;
  char out[5];
  EXPECT_TRUE(reader.Read(&i));
  EXPECT_TRUE(reader.Read(&u));
  EXPECT_TRUE(reader.Read(&d));
  EXPECT_TRUE(reader.ReadBytes(out, sizeof(out)));
  EXPECT_EQ(i, -7);
  EXPECT_EQ(u, 0xdeadbeefcafeULL);
  EXPECT_DOUBLE_EQ(d, 3.14159);
  EXPECT_EQ(std::memcmp(out, blob, 5), 0);
}

TEST(PageCodecTest, ReaderStopsAtEnd) {
  std::array<uint8_t, 16> tiny{};
  PageReader reader(tiny.data(), tiny.size());
  uint64_t a = 0, b = 0, c = 0;
  EXPECT_TRUE(reader.Read(&a));
  EXPECT_TRUE(reader.Read(&b));
  EXPECT_FALSE(reader.Read(&c));  // out of bytes
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(PageCodecTest, WriterTracksRemaining) {
  std::array<uint8_t, 32> buffer{};
  PageWriter writer(buffer.data(), buffer.size());
  writer.Write<uint64_t>(1);
  EXPECT_EQ(writer.remaining(), 24u);
  writer.Write<uint64_t>(2);
  writer.Write<uint64_t>(3);
  writer.Write<uint64_t>(4);
  EXPECT_EQ(writer.remaining(), 0u);
}

TEST(PageCodecDeathTest, OverflowAborts) {
  std::array<uint8_t, 8> buffer{};
  PageWriter writer(buffer.data(), buffer.size());
  writer.Write<uint64_t>(1);
  EXPECT_DEATH(writer.Write<uint8_t>(2), "page overflow");
}

TEST(PageCodecTest, NodeFitsInPage) {
  // The serialized PPR node layout: 4 (level) + 8 + 8 (times) + 8 (count)
  // + 50 entries x (32 rect + 16 lifetime + 4 child + 8 data).
  const size_t node_bytes = 4 + 8 + 8 + 8 + 50 * (32 + 16 + 4 + 8);
  EXPECT_LE(node_bytes, kPageSize);
}

// --- Page envelope (checksum / kind / version) ---

std::array<uint8_t, kPageSize> SealedTestPage(uint64_t value) {
  std::array<uint8_t, kPageSize> page{};
  PageWriter writer = PayloadWriter(page.data());
  writer.Write(value);
  SealPage(page.data(), PageKind::kTest);
  return page;
}

TEST(PageEnvelopeTest, SealAndOpenRoundTrip) {
  std::array<uint8_t, kPageSize> page = SealedTestPage(0xfeedface);
  Result<PageReader> payload =
      OpenPagePayload(page.data(), PageKind::kTest, /*id=*/9);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  uint64_t value = 0;
  PageReader reader = payload.value();
  ASSERT_TRUE(reader.Read(&value));
  EXPECT_EQ(value, 0xfeedfaceu);
}

TEST(PageEnvelopeTest, FlippedPayloadByteFailsChecksum) {
  std::array<uint8_t, kPageSize> page = SealedTestPage(1);
  page[kPageEnvelopeBytes + 100] ^= 0x40;  // one bit, deep in the payload
  const Result<PageReader> payload =
      OpenPagePayload(page.data(), PageKind::kTest, /*id=*/7);
  ASSERT_FALSE(payload.ok());
  EXPECT_EQ(payload.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(Contains(payload.status().message(), "page 7"))
      << payload.status().ToString();
  EXPECT_TRUE(Contains(payload.status().message(), "checksum mismatch"));
}

TEST(PageEnvelopeTest, FlippedChecksumByteFailsChecksum) {
  std::array<uint8_t, kPageSize> page = SealedTestPage(1);
  page[0] ^= 0x01;  // corrupt the stored CRC itself
  EXPECT_FALSE(OpenPagePayload(page.data(), PageKind::kTest, 0).ok());
}

TEST(PageEnvelopeTest, WrongKindRejected) {
  std::array<uint8_t, kPageSize> page = SealedTestPage(1);
  const Result<PageReader> payload =
      OpenPagePayload(page.data(), PageKind::kRStarNode, /*id=*/3);
  ASSERT_FALSE(payload.ok());
  EXPECT_TRUE(Contains(payload.status().message(), "page 3"))
      << payload.status().ToString();
  EXPECT_TRUE(Contains(payload.status().message(), "kind mismatch"));
}

TEST(PageEnvelopeTest, VersionSkewRejected) {
  std::array<uint8_t, kPageSize> page = SealedTestPage(1);
  // Stamp a future codec version and re-seal so only the version check
  // (not the checksum) can reject the page.
  page[6] = 99;
  page[7] = 0;
  const uint32_t crc = Crc32(page.data() + 4, kPageSize - 4);
  page[0] = static_cast<uint8_t>(crc);
  page[1] = static_cast<uint8_t>(crc >> 8);
  page[2] = static_cast<uint8_t>(crc >> 16);
  page[3] = static_cast<uint8_t>(crc >> 24);
  const Result<PageReader> payload =
      OpenPagePayload(page.data(), PageKind::kTest, /*id=*/5);
  ASSERT_FALSE(payload.ok());
  EXPECT_TRUE(Contains(payload.status().message(), "page 5"))
      << payload.status().ToString();
  EXPECT_TRUE(Contains(payload.status().message(), "unsupported codec version"));
}

TEST(PageEnvelopeTest, Crc32MatchesKnownVector) {
  // The standard check value for CRC-32/IEEE over "123456789".
  const uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32(data, sizeof(data)), 0xCBF43926u);
}

// --- FilePageBackend open-time validation ---

class FileBackendValidationTest : public ::testing::Test {
 protected:
  // A valid two-page file to corrupt, created fresh per test.
  void SetUp() override {
    path_ = ::testing::TempDir() + "/codec_validation.stpages";
    Result<std::unique_ptr<FilePageBackend>> backend =
        FilePageBackend::Create(path_);
    ASSERT_TRUE(backend.ok()) << backend.status().ToString();
    for (PageId id = 0; id < 2; ++id) {
      const std::array<uint8_t, kPageSize> page = SealedTestPage(id);
      ASSERT_TRUE(backend.value()->Write(id, page.data()).ok());
    }
    ASSERT_TRUE(backend.value()->Sync().ok());
  }

  // Overwrites `count` bytes at `offset` in the page file.
  void Poke(long offset, const void* bytes, size_t count) {
    std::FILE* f = std::fopen(path_.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    ASSERT_EQ(std::fwrite(bytes, 1, count, f), count);
    ASSERT_EQ(std::fclose(f), 0);
  }

  Status OpenStatus() {
    Result<std::unique_ptr<FilePageBackend>> backend =
        FilePageBackend::Open(path_);
    return backend.ok() ? Status::OK() : backend.status();
  }

  std::string path_;
};

TEST_F(FileBackendValidationTest, RoundTripReopens) {
  const Status status = OpenStatus();
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST_F(FileBackendValidationTest, WrongMagicRejected) {
  const uint64_t garbage = 0x1122334455667788ull;
  Poke(kPageEnvelopeBytes, &garbage, sizeof(garbage));
  const Status status = OpenStatus();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(Contains(status.message(), "not a stindex page file"))
      << status.ToString();
}

TEST_F(FileBackendValidationTest, FlippedHeaderByteRejectedByChecksum) {
  // Past the magic, inside the sealed header payload.
  const uint8_t garbage = 0xa5;
  Poke(kPageEnvelopeBytes + 16, &garbage, 1);
  const Status status = OpenStatus();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(Contains(status.message(), "corrupt header"))
      << status.ToString();
}

TEST_F(FileBackendValidationTest, VersionSkewRejected) {
  // Rewrite the header with a bumped format version and a valid seal, so
  // the version check itself must fire.
  std::array<uint8_t, kPageSize> header{};
  PageWriter writer = PayloadWriter(header.data());
  writer.Write(kFilePageMagic);
  writer.Write<uint32_t>(kFileFormatVersion + 1);
  writer.Write<uint64_t>(kPageSize);
  writer.Write<uint64_t>(4);  // bitmap_pages
  writer.Write<uint64_t>(2);  // slot_count
  writer.Write<uint64_t>(2);  // live_count
  SealPage(header.data(), PageKind::kFileHeader);
  Poke(0, header.data(), header.size());
  const Status status = OpenStatus();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(Contains(status.message(), "unsupported format version"))
      << status.ToString();
}

TEST_F(FileBackendValidationTest, TruncatedFileRejected) {
  std::FILE* f = std::fopen(path_.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
  const long full = std::ftell(f);
  ASSERT_EQ(std::fclose(f), 0);
  // Chop off the last data page; the header still promises two slots.
  ASSERT_EQ(::truncate(path_.c_str(), full - static_cast<long>(kPageSize)), 0);
  const Status status = OpenStatus();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(Contains(status.message(), "truncated page file"))
      << status.ToString();
}

TEST_F(FileBackendValidationTest, FileShorterThanHeaderRejected) {
  ASSERT_EQ(::truncate(path_.c_str(), 100), 0);
  const Status status = OpenStatus();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(Contains(status.message(), "truncated page file"))
      << status.ToString();
}

TEST_F(FileBackendValidationTest, CorruptDataPageRejectedAtRead) {
  // Data-page corruption is not an Open error (Open only validates
  // metadata); it must surface when the page is decoded.
  const uint8_t garbage = 0xff;
  Poke(static_cast<long>((1 + 4 + 1) * kPageSize) + 200, &garbage, 1);
  Result<std::unique_ptr<FilePageBackend>> backend =
      FilePageBackend::Open(path_);
  ASSERT_TRUE(backend.ok()) << backend.status().ToString();
  uint8_t buffer[kPageSize];
  ASSERT_TRUE(backend.value()->Read(1, buffer).ok());
  const Result<PageReader> payload =
      OpenPagePayload(buffer, PageKind::kTest, /*id=*/1);
  ASSERT_FALSE(payload.ok());
  EXPECT_TRUE(Contains(payload.status().message(), "checksum mismatch"))
      << payload.status().ToString();
}

}  // namespace
}  // namespace stindex
