#include <gtest/gtest.h>

#include <array>

#include "storage/page_codec.h"

namespace stindex {
namespace {

TEST(PageCodecTest, RoundTripMixedTypes) {
  std::array<uint8_t, kPageSize> page{};
  PageWriter writer(page.data(), kPageSize);
  writer.Write<int32_t>(-7);
  writer.Write<uint64_t>(0xdeadbeefcafeULL);
  writer.Write(3.14159);
  const char blob[5] = {'a', 'b', 'c', 'd', 'e'};
  writer.WriteBytes(blob, sizeof(blob));
  EXPECT_EQ(writer.used(), 4u + 8u + 8u + 5u);

  PageReader reader(page.data(), kPageSize);
  int32_t i = 0;
  uint64_t u = 0;
  double d = 0.0;
  char out[5];
  EXPECT_TRUE(reader.Read(&i));
  EXPECT_TRUE(reader.Read(&u));
  EXPECT_TRUE(reader.Read(&d));
  EXPECT_TRUE(reader.ReadBytes(out, sizeof(out)));
  EXPECT_EQ(i, -7);
  EXPECT_EQ(u, 0xdeadbeefcafeULL);
  EXPECT_DOUBLE_EQ(d, 3.14159);
  EXPECT_EQ(std::memcmp(out, blob, 5), 0);
}

TEST(PageCodecTest, ReaderStopsAtEnd) {
  std::array<uint8_t, 16> tiny{};
  PageReader reader(tiny.data(), tiny.size());
  uint64_t a = 0, b = 0, c = 0;
  EXPECT_TRUE(reader.Read(&a));
  EXPECT_TRUE(reader.Read(&b));
  EXPECT_FALSE(reader.Read(&c));  // out of bytes
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(PageCodecTest, WriterTracksRemaining) {
  std::array<uint8_t, 32> buffer{};
  PageWriter writer(buffer.data(), buffer.size());
  writer.Write<uint64_t>(1);
  EXPECT_EQ(writer.remaining(), 24u);
  writer.Write<uint64_t>(2);
  writer.Write<uint64_t>(3);
  writer.Write<uint64_t>(4);
  EXPECT_EQ(writer.remaining(), 0u);
}

TEST(PageCodecDeathTest, OverflowAborts) {
  std::array<uint8_t, 8> buffer{};
  PageWriter writer(buffer.data(), buffer.size());
  writer.Write<uint64_t>(1);
  EXPECT_DEATH(writer.Write<uint8_t>(2), "page overflow");
}

TEST(PageCodecTest, NodeFitsInPage) {
  // The serialized PPR node layout: 4 (level) + 8 + 8 (times) + 8 (count)
  // + 50 entries x (32 rect + 16 lifetime + 4 child + 8 data).
  const size_t node_bytes = 4 + 8 + 8 + 8 + 50 * (32 + 16 + 4 + 8);
  EXPECT_LE(node_bytes, kPageSize);
}

}  // namespace
}  // namespace stindex
