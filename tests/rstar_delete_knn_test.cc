#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "rstar/rstar_tree.h"
#include "util/random.h"

namespace stindex {
namespace {

Box3D RandomBox(Rng& rng, double max_extent = 0.04) {
  const double x = rng.UniformDouble(0, 1);
  const double y = rng.UniformDouble(0, 1);
  const double t = rng.UniformDouble(0, 1);
  return Box3D(x, y, t, x + rng.UniformDouble(0, max_extent),
               y + rng.UniformDouble(0, max_extent),
               t + rng.UniformDouble(0, max_extent));
}

std::vector<DataId> BruteForceSearch(
    const std::vector<std::pair<Box3D, bool>>& boxes, const Box3D& query) {
  std::vector<DataId> hits;
  for (size_t i = 0; i < boxes.size(); ++i) {
    if (boxes[i].second && boxes[i].first.Intersects(query)) {
      hits.push_back(i);
    }
  }
  return hits;
}

TEST(RStarDeleteTest, DeleteMissingEntryReturnsFalse) {
  RStarTree tree;
  EXPECT_FALSE(tree.Delete(Box3D(0, 0, 0, 1, 1, 1), 0));
  tree.Insert(Box3D(0.1, 0.1, 0.1, 0.2, 0.2, 0.2), 7);
  EXPECT_FALSE(tree.Delete(Box3D(0.1, 0.1, 0.1, 0.2, 0.2, 0.2), 8));
  EXPECT_FALSE(tree.Delete(Box3D(0.3, 0.3, 0.3, 0.4, 0.4, 0.4), 7));
  EXPECT_EQ(tree.Size(), 1u);
}

TEST(RStarDeleteTest, InsertDeleteRoundTripEmptiesTree) {
  RStarTree tree;
  Rng rng(301);
  std::vector<Box3D> boxes;
  for (DataId i = 0; i < 300; ++i) {
    boxes.push_back(RandomBox(rng));
    tree.Insert(boxes.back(), i);
  }
  for (DataId i = 0; i < 300; ++i) {
    EXPECT_TRUE(tree.Delete(boxes[i], i)) << i;
    tree.CheckInvariants();
  }
  EXPECT_EQ(tree.Size(), 0u);
  EXPECT_EQ(tree.Height(), 0u);
  std::vector<DataId> results;
  tree.Search(Box3D(-1, -1, -1, 2, 2, 2), &results);
  EXPECT_TRUE(results.empty());
}

class RStarDeleteFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RStarDeleteFuzzTest, InterleavedInsertDeleteMatchesScan) {
  Rng rng(GetParam());
  RStarTree tree;
  std::vector<std::pair<Box3D, bool>> boxes;  // (box, present)
  for (int step = 0; step < 1200; ++step) {
    const bool do_delete = !boxes.empty() && rng.Bernoulli(0.4);
    if (do_delete) {
      // Delete a random present entry (if any).
      const size_t pick =
          static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(
                                                    boxes.size()) - 1));
      if (boxes[pick].second) {
        EXPECT_TRUE(tree.Delete(boxes[pick].first, pick));
        boxes[pick].second = false;
      }
    } else {
      boxes.emplace_back(RandomBox(rng), true);
      tree.Insert(boxes.back().first, boxes.size() - 1);
    }
    if (step % 100 == 99) {
      tree.CheckInvariants();
      const Box3D query = RandomBox(rng, 0.3);
      std::vector<DataId> results;
      tree.Search(query, &results);
      std::sort(results.begin(), results.end());
      EXPECT_EQ(results, BruteForceSearch(boxes, query)) << "step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RStarDeleteFuzzTest,
                         ::testing::Values(311, 312, 313, 314));

TEST(RStarDeleteTest, PagesReclaimedOnMassDeletion) {
  RStarTree tree;
  Rng rng(321);
  std::vector<Box3D> boxes;
  for (DataId i = 0; i < 2000; ++i) {
    boxes.push_back(RandomBox(rng));
    tree.Insert(boxes.back(), i);
  }
  const size_t full_pages = tree.PageCount();
  for (DataId i = 0; i < 1900; ++i) EXPECT_TRUE(tree.Delete(boxes[i], i));
  tree.CheckInvariants();
  EXPECT_LT(tree.PageCount(), full_pages / 4);
  // Remaining entries still retrievable.
  std::vector<DataId> results;
  tree.Search(Box3D(-1, -1, -1, 2, 2, 2), &results);
  EXPECT_EQ(results.size(), 100u);
}

double CenterDistance2(const double point[3], const Box3D& box) {
  double sum = 0.0;
  for (int d = 0; d < 3; ++d) {
    double delta = 0.0;
    if (point[d] < box.lo[d]) {
      delta = box.lo[d] - point[d];
    } else if (point[d] > box.hi[d]) {
      delta = point[d] - box.hi[d];
    }
    sum += delta * delta;
  }
  return sum;
}

class KnnTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KnnTest, MatchesBruteForceDistances) {
  Rng rng(GetParam());
  RStarTree tree;
  std::vector<Box3D> boxes;
  for (DataId i = 0; i < 700; ++i) {
    boxes.push_back(RandomBox(rng, 0.02));
    tree.Insert(boxes.back(), i);
  }
  for (int q = 0; q < 15; ++q) {
    const double point[3] = {rng.UniformDouble(0, 1),
                             rng.UniformDouble(0, 1),
                             rng.UniformDouble(0, 1)};
    const size_t k = static_cast<size_t>(rng.UniformInt(1, 20));
    std::vector<DataId> results;
    tree.NearestNeighbors(point, k, &results);
    ASSERT_EQ(results.size(), k);

    // Compare the distance multiset against brute force (ties make id
    // comparison fragile).
    std::vector<double> brute;
    for (const Box3D& box : boxes) brute.push_back(CenterDistance2(point, box));
    std::sort(brute.begin(), brute.end());
    std::vector<double> got;
    for (DataId id : results) {
      got.push_back(CenterDistance2(point, boxes[id]));
    }
    std::sort(got.begin(), got.end());
    for (size_t i = 0; i < k; ++i) {
      EXPECT_NEAR(got[i], brute[i], 1e-12) << "q=" << q << " i=" << i;
    }
    // Results come out in non-decreasing distance order.
    for (size_t i = 1; i < k; ++i) {
      EXPECT_LE(CenterDistance2(point, boxes[results[i - 1]]),
                CenterDistance2(point, boxes[results[i]]) + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnnTest, ::testing::Values(331, 332, 333));

TEST(KnnTest, KLargerThanTreeReturnsEverything) {
  RStarTree tree;
  Rng rng(341);
  for (DataId i = 0; i < 30; ++i) tree.Insert(RandomBox(rng), i);
  const double point[3] = {0.5, 0.5, 0.5};
  std::vector<DataId> results;
  tree.NearestNeighbors(point, 100, &results);
  EXPECT_EQ(results.size(), 30u);
  tree.NearestNeighbors(point, 0, &results);
  EXPECT_TRUE(results.empty());
}

}  // namespace
}  // namespace stindex
