#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace stindex {
namespace {

TEST(ThreadPoolTest, StartupAndShutdown) {
  // Pools of various sizes come up and join cleanly, with and without
  // having run work.
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool idle(threads);
    EXPECT_EQ(idle.num_threads(), threads);
  }
  ThreadPool pool(3);
  std::atomic<int> calls{0};
  pool.ParallelFor(100, 3, [&](size_t, size_t begin, size_t end) {
    calls += static_cast<int>(end - begin);
  });
  EXPECT_EQ(calls.load(), 100);
}

TEST(ThreadPoolTest, ClampsNonPositiveThreadCounts) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool negative(-4);
  EXPECT_EQ(negative.num_threads(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeNeverCallsBody) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 4, [&](size_t, size_t, size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  ParallelFor(4, 0, [&](size_t, size_t, size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ParallelForSingleElement) {
  ThreadPool pool(7);
  std::atomic<int> calls{0};
  size_t seen_begin = 99, seen_end = 99, seen_chunk = 99;
  pool.ParallelFor(1, 7, [&](size_t chunk, size_t begin, size_t end) {
    ++calls;
    seen_chunk = chunk;
    seen_begin = begin;
    seen_end = end;
  });
  // More chunks than elements clamps to one chunk covering [0, 1).
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen_chunk, 0u);
  EXPECT_EQ(seen_begin, 0u);
  EXPECT_EQ(seen_end, 1u);
}

TEST(ThreadPoolTest, ParallelForNonDivisibleRangeCoversEveryIndexOnce) {
  ThreadPool pool(3);
  for (size_t n : {2u, 5u, 10u, 17u, 101u}) {
    for (int chunks : {1, 2, 3, 4, 7, 16}) {
      std::vector<std::atomic<int>> hits(n);
      pool.ParallelFor(n, chunks, [&](size_t, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) ++hits[i];
      });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " chunks=" << chunks
                                     << " index=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, ChunkBoundariesAreDeterministic) {
  // The decomposition depends only on (n, chunks): the first n % chunks
  // ranges are one element longer. Scheduling cannot change it.
  ThreadPool pool(4);
  const size_t n = 11;
  const int chunks = 4;
  std::vector<std::pair<size_t, size_t>> ranges(chunks);
  pool.ParallelFor(n, chunks, [&](size_t chunk, size_t begin, size_t end) {
    ranges[chunk] = {begin, end};
  });
  const std::vector<std::pair<size_t, size_t>> expected = {
      {0, 3}, {3, 6}, {6, 9}, {9, 11}};
  EXPECT_EQ(ranges, expected);
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(8, 4,
                       [](size_t, size_t begin, size_t) {
                         if (begin >= 4) {
                           throw std::runtime_error("chunk failed");
                         }
                       }),
      std::runtime_error);

  // All chunks of the failed batch completed; the pool accepts new work.
  std::atomic<int> calls{0};
  pool.ParallelFor(8, 4, [&](size_t, size_t begin, size_t end) {
    calls += static_cast<int>(end - begin);
  });
  EXPECT_EQ(calls.load(), 8);
}

TEST(ThreadPoolTest, ExceptionMessageIsPreserved) {
  ThreadPool pool(2);
  try {
    pool.ParallelFor(2, 2, [](size_t, size_t, size_t) {
      throw std::runtime_error("boom");
    });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Regression: a ParallelFor issued from inside a pool task must not
  // queue behind the outer chunks that are waiting for it. With 2 workers
  // and 2 outer chunks, every worker is busy when the inner batches are
  // issued; without the inline fallback this deadlocks.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(2, 2, [&](size_t, size_t, size_t) {
    pool.ParallelFor(10, 2, [&](size_t, size_t begin, size_t end) {
      inner_total += static_cast<int>(end - begin);
    });
  });
  EXPECT_EQ(inner_total.load(), 20);
}

TEST(ThreadPoolTest, DeeplyNestedSubmissionCompletes) {
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  pool.ParallelFor(4, 4, [&](size_t, size_t, size_t) {
    pool.ParallelFor(4, 4, [&](size_t, size_t, size_t) {
      pool.ParallelFor(4, 4, [&](size_t, size_t, size_t) { ++leaves; });
    });
  });
  EXPECT_EQ(leaves.load(), 64);
}

TEST(ThreadPoolTest, SharedPoolGrowsButNeverShrinks) {
  ThreadPool& a = ThreadPool::Shared(2);
  EXPECT_GE(a.num_threads(), 2);
  const int before = a.num_threads();
  ThreadPool& b = ThreadPool::Shared(before + 2);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.num_threads(), before + 2);
  ThreadPool& c = ThreadPool::Shared(1);
  EXPECT_EQ(c.num_threads(), before + 2);
}

TEST(ThreadPoolTest, ParallelChunksMatchesExecution) {
  EXPECT_EQ(ParallelChunks(4, 100u), 4u);
  EXPECT_EQ(ParallelChunks(8, 3u), 3u);
  EXPECT_EQ(ParallelChunks(0, 5u), 1u);
  EXPECT_EQ(ParallelChunks(3, 0u), 0u);

  std::atomic<size_t> max_chunk{0};
  std::atomic<int> calls{0};
  ParallelFor(5, 3, [&](size_t chunk, size_t, size_t) {
    ++calls;
    size_t seen = max_chunk.load();
    while (chunk > seen && !max_chunk.compare_exchange_weak(seen, chunk)) {
    }
  });
  EXPECT_EQ(static_cast<size_t>(calls.load()), ParallelChunks(5, 3u));
  EXPECT_EQ(max_chunk.load(), ParallelChunks(5, 3u) - 1);
}

TEST(ThreadPoolTest, FreeParallelForSerialPathRunsInline) {
  // num_threads <= 1 must execute on the calling thread (one chunk).
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  int calls = 0;
  ParallelFor(1, 42, [&](size_t chunk, size_t begin, size_t end) {
    ++calls;
    seen = std::this_thread::get_id();
    EXPECT_EQ(chunk, 0u);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 42u);
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPoolTest, ManyBatchesReuseTheSameWorkers) {
  // A smoke test that the pool is actually reusable: hundreds of small
  // batches on one pool complete with correct totals.
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(32, 4, [&](size_t, size_t begin, size_t end) {
      long sum = 0;
      for (size_t i = begin; i < end; ++i) sum += static_cast<long>(i);
      total += sum;
    });
  }
  EXPECT_EQ(total.load(), 200L * (31L * 32L / 2));
}

}  // namespace
}  // namespace stindex
