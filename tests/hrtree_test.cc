#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "hrtree/hr_tree.h"
#include "pprtree/ppr_tree.h"
#include "util/random.h"

namespace stindex {
namespace {

std::vector<PprDataId> ScanSnapshot(const std::vector<SegmentRecord>& records,
                                    const Rect2D& area, Time t) {
  std::vector<PprDataId> hits;
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].box.interval.Contains(t) &&
        records[i].box.rect.Intersects(area)) {
      hits.push_back(i);
    }
  }
  return hits;
}

std::vector<PprDataId> ScanInterval(const std::vector<SegmentRecord>& records,
                                    const Rect2D& area,
                                    const TimeInterval& range) {
  std::vector<PprDataId> hits;
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].box.interval.Intersects(range) &&
        records[i].box.rect.Intersects(area)) {
      hits.push_back(i);
    }
  }
  return hits;
}

std::vector<SegmentRecord> RandomRecords(uint64_t seed, size_t count,
                                         Time domain = 200,
                                         Time max_life = 40) {
  Rng rng(seed);
  std::vector<SegmentRecord> records;
  for (size_t i = 0; i < count; ++i) {
    SegmentRecord record;
    record.object = static_cast<ObjectId>(i);
    const Time life = rng.UniformInt(1, max_life);
    const Time start = rng.UniformInt(0, domain - life);
    const double x = rng.UniformDouble(0, 0.95);
    const double y = rng.UniformDouble(0, 0.95);
    record.box.rect = Rect2D(x, y, x + rng.UniformDouble(0.005, 0.05),
                             y + rng.UniformDouble(0.005, 0.05));
    record.box.interval = TimeInterval(start, start + life);
    records.push_back(record);
  }
  return records;
}

TEST(HrTreeTest, EmptyTree) {
  HrTree tree;
  std::vector<HrDataId> results;
  tree.SnapshotQuery(Rect2D(0, 0, 1, 1), 5, &results);
  EXPECT_TRUE(results.empty());
  tree.IntervalQuery(Rect2D(0, 0, 1, 1), TimeInterval(0, 10), &results);
  EXPECT_TRUE(results.empty());
  tree.CheckInvariants();
}

TEST(HrTreeTest, SingleRecordLifecycle) {
  HrTree tree;
  tree.Insert(Rect2D(0.4, 0.4, 0.5, 0.5), 10, 0);
  tree.Delete(0, 20);
  std::vector<HrDataId> results;
  tree.SnapshotQuery(Rect2D(0, 0, 1, 1), 9, &results);
  EXPECT_TRUE(results.empty());
  tree.SnapshotQuery(Rect2D(0, 0, 1, 1), 10, &results);
  EXPECT_EQ(results.size(), 1u);
  tree.SnapshotQuery(Rect2D(0, 0, 1, 1), 19, &results);
  EXPECT_EQ(results.size(), 1u);
  tree.SnapshotQuery(Rect2D(0, 0, 1, 1), 20, &results);
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(tree.NumVersions(), 2u);
  tree.CheckInvariants();
}

TEST(HrTreeTest, BranchSharingKeepsPagesBelowFullCopies) {
  // 500 records arriving over many instants: per-change path copying
  // must cost O(height) pages, far below one full tree per version.
  const std::vector<SegmentRecord> records = RandomRecords(3, 500);
  std::unique_ptr<HrTree> tree = BuildHrTree(records);
  tree->CheckInvariants();
  // A full copy per version would need versions * (pages of one tree).
  const size_t one_tree_pages = 500 / 25;  // ~fanout 25
  EXPECT_LT(tree->PageCount(), tree->NumVersions() * one_tree_pages / 4);
  EXPECT_GT(tree->NumVersions(), 100u);
}

TEST(HrTreeTest, StorageExceedsPprStorage) {
  // The paper's Section I claim: overlapping costs a logarithmic (in
  // practice several-fold) storage overhead compared to the multiversion
  // approach on the same evolution.
  const std::vector<SegmentRecord> records = RandomRecords(5, 800);
  std::unique_ptr<HrTree> hr = BuildHrTree(records);
  std::unique_ptr<PprTree> ppr = BuildPprTree(records);
  EXPECT_GT(hr->PageCount(), 2 * ppr->PageCount());
}

class HrEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HrEquivalenceTest, SnapshotAndIntervalMatchScan) {
  const std::vector<SegmentRecord> records =
      RandomRecords(GetParam(), 400, 150, 40);
  std::unique_ptr<HrTree> tree = BuildHrTree(records);
  tree->CheckInvariants();
  EXPECT_EQ(tree->Size(), records.size());

  Rng rng(GetParam() + 500);
  for (int q = 0; q < 40; ++q) {
    const double x = rng.UniformDouble(0, 0.8);
    const double y = rng.UniformDouble(0, 0.8);
    const Rect2D area(x, y, x + rng.UniformDouble(0.02, 0.2),
                      y + rng.UniformDouble(0.02, 0.2));
    const Time t = rng.UniformInt(0, 149);
    std::vector<HrDataId> results;
    tree->SnapshotQuery(area, t, &results);
    std::sort(results.begin(), results.end());
    EXPECT_EQ(results, ScanSnapshot(records, area, t)) << "snapshot " << q;

    const Time d = rng.UniformInt(1, 25);
    const Time start = rng.UniformInt(0, 149 - d);
    const TimeInterval range(start, start + d);
    tree->IntervalQuery(area, range, &results);
    std::sort(results.begin(), results.end());
    EXPECT_EQ(results, ScanInterval(records, area, range))
        << "interval " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HrEquivalenceTest,
                         ::testing::Values(301, 302, 303, 304, 305));

TEST(HrTreeTest, SmallNodeCapacity) {
  HrConfig config;
  config.max_entries = 6;
  config.min_entries = 2;
  const std::vector<SegmentRecord> records = RandomRecords(7, 300, 120, 30);
  std::unique_ptr<HrTree> tree = BuildHrTree(records, config);
  tree->CheckInvariants();
  Rng rng(8);
  for (int q = 0; q < 20; ++q) {
    const double x = rng.UniformDouble(0, 0.8);
    const Rect2D area(x, 0.0, x + 0.2, 1.0);
    const Time t = rng.UniformInt(0, 119);
    std::vector<HrDataId> results;
    tree->SnapshotQuery(area, t, &results);
    std::sort(results.begin(), results.end());
    EXPECT_EQ(results, ScanSnapshot(records, area, t));
  }
}

TEST(HrTreeTest, IntervalQueryCostGrowsWithDuration) {
  // The overlapping approach's weakness: interval queries pay per
  // version tree in the range.
  const std::vector<SegmentRecord> records = RandomRecords(9, 1500, 300, 30);
  std::unique_ptr<HrTree> tree = BuildHrTree(records);
  auto io_for = [&tree](Time duration) {
    tree->ResetQueryState();
    std::vector<HrDataId> results;
    tree->IntervalQuery(Rect2D(0.2, 0.2, 0.4, 0.4),
                        TimeInterval(100, 100 + duration), &results);
    return tree->stats().misses;
  };
  EXPECT_LT(io_for(1) * 2, io_for(50));
}

TEST(HrTreeTest, OutOfOrderUpdatesRejected) {
  HrTree tree;
  tree.Insert(Rect2D(0, 0, 0.1, 0.1), 10, 0);
  EXPECT_DEATH(tree.Insert(Rect2D(0, 0, 0.1, 0.1), 5, 1), "time order");
  EXPECT_DEATH(tree.Delete(7, 12), "not alive");
}

}  // namespace
}  // namespace stindex
