#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "datagen/query_gen.h"
#include "datagen/random_dataset.h"
#include "io/csv.h"

namespace stindex {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(CsvTest, TrajectoriesRoundTrip) {
  RandomDatasetConfig config;
  config.num_objects = 60;
  config.changing_extents = true;
  const std::vector<Trajectory> objects = GenerateRandomDataset(config);

  const std::string path = TempPath("objects.csv");
  ASSERT_TRUE(WriteTrajectoriesCsv(path, objects).ok());
  Result<std::vector<Trajectory>> read = ReadTrajectoriesCsv(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  const std::vector<Trajectory>& loaded = read.value();
  ASSERT_EQ(loaded.size(), objects.size());
  for (size_t i = 0; i < objects.size(); ++i) {
    EXPECT_EQ(loaded[i].id(), objects[i].id());
    EXPECT_EQ(loaded[i].Lifetime(), objects[i].Lifetime());
    ASSERT_EQ(loaded[i].tuples().size(), objects[i].tuples().size());
    // Exact round trip (printed with %.17g).
    const TimeInterval life = objects[i].Lifetime();
    for (Time t = life.start; t < life.end; ++t) {
      EXPECT_EQ(loaded[i].RectAt(t), objects[i].RectAt(t));
    }
  }
}

TEST(CsvTest, SegmentsRoundTrip) {
  RandomDatasetConfig config;
  config.num_objects = 40;
  const std::vector<Trajectory> objects = GenerateRandomDataset(config);
  std::vector<SegmentRecord> records;
  for (const Trajectory& object : objects) {
    SegmentRecord record;
    record.object = object.id();
    record.box = object.FullBox();
    records.push_back(record);
  }
  const std::string path = TempPath("segments.csv");
  ASSERT_TRUE(WriteSegmentsCsv(path, records).ok());
  Result<std::vector<SegmentRecord>> read = ReadSegmentsCsv(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read.value().size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(read.value()[i].object, records[i].object);
    EXPECT_EQ(read.value()[i].box, records[i].box);
  }
}

TEST(CsvTest, QueriesRoundTrip) {
  const std::vector<STQuery> queries = GenerateQuerySet(SmallRangeSet());
  const std::string path = TempPath("queries.csv");
  ASSERT_TRUE(WriteQueriesCsv(path, queries).ok());
  Result<std::vector<STQuery>> read = ReadQueriesCsv(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read.value().size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(read.value()[i].area, queries[i].area);
    EXPECT_EQ(read.value()[i].range, queries[i].range);
  }
}

TEST(CsvTest, MissingFileIsNotFound) {
  Result<std::vector<Trajectory>> read =
      ReadTrajectoriesCsv(TempPath("nope.csv"));
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST(CsvTest, MalformedLineReportsLineNumber) {
  const std::string path = TempPath("bad.csv");
  {
    std::ofstream out(path);
    out << "# header\n";
    out << "0,0,10,0.5,0.5,0.01,0.01\n";
    out << "1,banana,10,0.5,0.5,0.01,0.01\n";
  }
  Result<std::vector<Trajectory>> read = ReadTrajectoriesCsv(path);
  ASSERT_FALSE(read.ok());
  EXPECT_NE(read.status().message().find(":3:"), std::string::npos)
      << read.status().ToString();
}

TEST(CsvTest, WrongFieldCountRejected) {
  const std::string path = TempPath("short.csv");
  {
    std::ofstream out(path);
    out << "0,0,10,0.5\n";
  }
  EXPECT_FALSE(ReadTrajectoriesCsv(path).ok());
  EXPECT_FALSE(ReadSegmentsCsv(path).ok());
}

TEST(CsvTest, NonContiguousTuplesRejected) {
  const std::string path = TempPath("gap.csv");
  {
    std::ofstream out(path);
    out << "0,0,10,0.5,0.5,0.01,0.01\n";
    out << "0,12,20,0.5,0.5,0.01,0.01\n";  // gap 10..12
  }
  Result<std::vector<Trajectory>> read = ReadTrajectoriesCsv(path);
  EXPECT_FALSE(read.ok());
}

TEST(CsvTest, ParseDoubleRoundTripsExtremeValues) {
  // Values written with %.17g must parse back bit-exact, including
  // denormals (strtod flags their underflow with ERANGE, which must not
  // be treated as an error) and the largest finite doubles.
  const double extremes[] = {
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::min() / 4,  // subnormal
      std::numeric_limits<double>::min(),
      std::numeric_limits<double>::max(),
      -std::numeric_limits<double>::max(),
      0.0,
      -1.5e-300,
  };
  for (const double value : extremes) {
    char text[64];
    std::snprintf(text, sizeof(text), "%.17g", value);
    double parsed = 0.0;
    const Status status = ParseDouble(text, &parsed);
    ASSERT_TRUE(status.ok()) << text << ": " << status.ToString();
    EXPECT_EQ(parsed, value) << text;
  }
}

TEST(CsvTest, ParseDoubleRejectsOnlyOverflow) {
  double parsed = 0.0;
  // Overflow to +/-HUGE_VAL is OutOfRange...
  Status status = ParseDouble("1e999", &parsed);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
  status = ParseDouble("-1e999", &parsed);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
  // ...while underflow toward zero is accepted.
  EXPECT_TRUE(ParseDouble("1e-999", &parsed).ok());
  EXPECT_EQ(parsed, 0.0);
  // Syntax errors stay InvalidArgument.
  for (const char* bad : {"", "banana", "1.5x", "1.5 ", " 1.5e"}) {
    status = ParseDouble(bad, &parsed);
    ASSERT_FALSE(status.ok()) << "'" << bad << "'";
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(CsvTest, ParseTimeRejectsGarbageAndOverflow) {
  Time parsed = 0;
  EXPECT_TRUE(ParseTime("42", &parsed).ok());
  EXPECT_EQ(parsed, 42);
  EXPECT_TRUE(ParseTime("-7", &parsed).ok());
  EXPECT_EQ(parsed, -7);
  Status status = ParseTime("99999999999999999999", &parsed);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
  for (const char* bad : {"", "4.5", "ten", "7 "}) {
    status = ParseTime(bad, &parsed);
    ASSERT_FALSE(status.ok()) << "'" << bad << "'";
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(CsvTest, DenormalExtentsRoundTripThroughSegmentsCsv) {
  SegmentRecord record;
  record.object = 9;
  record.box.interval = TimeInterval(0, 5);
  record.box.rect = Rect2D(std::numeric_limits<double>::denorm_min(), 0.25,
                           0.5, std::numeric_limits<double>::max());
  const std::string path = TempPath("denormal.csv");
  ASSERT_TRUE(WriteSegmentsCsv(path, {record}).ok());
  Result<std::vector<SegmentRecord>> read = ReadSegmentsCsv(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read.value().size(), 1u);
  EXPECT_EQ(read.value()[0].box, record.box);
}

TEST(CsvTest, TrailingDelimiterRejected) {
  // A trailing comma produces an empty final field, which must be a
  // parse error rather than a silently dropped or zeroed column.
  const std::string path = TempPath("trailing.csv");
  {
    std::ofstream out(path);
    out << "0,0,10,0.1,0.2,0.3,0.4,\n";
  }
  EXPECT_FALSE(ReadSegmentsCsv(path).ok());
  Result<std::vector<STQuery>> queries = ReadQueriesCsv(path);
  EXPECT_FALSE(queries.ok());
}

TEST(CsvTest, CommentsAndBlankLinesIgnored) {
  const std::string path = TempPath("comments.csv");
  {
    std::ofstream out(path);
    out << "# a comment\n\n";
    out << "5,3,9,0.1:0.01,0.2,0.05,0.05\n";
    out << "\n# trailing comment\n";
  }
  Result<std::vector<Trajectory>> read = ReadTrajectoriesCsv(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read.value().size(), 1u);
  EXPECT_EQ(read.value()[0].id(), 5u);
  EXPECT_EQ(read.value()[0].tuples()[0].center_x, Polynomial({0.1, 0.01}));
}

}  // namespace
}  // namespace stindex
