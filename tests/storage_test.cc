#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/page_backend.h"
#include "storage/page_codec.h"
#include "storage/page_store.h"

namespace stindex {
namespace {

// A trivial page type carrying a tag so tests can verify identity.
class TestPage : public Page {
 public:
  explicit TestPage(int tag) : tag_(tag) {}
  int tag() const { return tag_; }

 private:
  int tag_;
};

// Serializes TestPage for the backend-mode BufferPool tests below.
class TestCodec : public PageCodec {
 public:
  void Encode(const Page& page, uint8_t* out) const override {
    PageWriter writer = PayloadWriter(out);
    writer.Write<int32_t>(static_cast<const TestPage&>(page).tag());
    SealPage(out, PageKind::kTest);
  }

  Result<std::unique_ptr<Page>> Decode(const uint8_t* page,
                                       PageId id) const override {
    Result<PageReader> payload = OpenPagePayload(page, PageKind::kTest, id);
    if (!payload.ok()) return payload.status();
    PageReader reader = payload.value();
    int32_t tag = 0;
    if (!reader.Read(&tag)) {
      return Status::InvalidArgument("page " + std::to_string(id) +
                                     ": short test page");
    }
    return Result<std::unique_ptr<Page>>(std::make_unique<TestPage>(tag));
  }
};

TEST(PageStoreTest, AllocateAndGet) {
  PageStore store;
  const PageId a = store.Allocate(std::make_unique<TestPage>(1));
  const PageId b = store.Allocate(std::make_unique<TestPage>(2));
  EXPECT_NE(a, b);
  EXPECT_EQ(static_cast<TestPage*>(store.Get(a))->tag(), 1);
  EXPECT_EQ(static_cast<TestPage*>(store.Get(b))->tag(), 2);
  EXPECT_EQ(store.PageCount(), 2u);
}

TEST(PageStoreTest, FreeReducesLiveCount) {
  PageStore store;
  const PageId a = store.Allocate(std::make_unique<TestPage>(1));
  store.Allocate(std::make_unique<TestPage>(2));
  EXPECT_TRUE(store.IsLive(a));
  store.Free(a);
  EXPECT_FALSE(store.IsLive(a));
  EXPECT_EQ(store.PageCount(), 1u);
  EXPECT_EQ(store.AllocatedCount(), 2u);
}

TEST(PageStoreTest, PeakPageCountTracksHighWaterMark) {
  PageStore store;
  PageId pages[3];
  for (int i = 0; i < 3; ++i) {
    pages[i] = store.Allocate(std::make_unique<TestPage>(i));
  }
  EXPECT_EQ(store.PeakPageCount(), 3u);
  store.Free(pages[0]);
  store.Free(pages[1]);
  EXPECT_EQ(store.PageCount(), 1u);
  EXPECT_EQ(store.PeakPageCount(), 3u);  // the peak never decays
  store.Allocate(std::make_unique<TestPage>(9));
  EXPECT_EQ(store.PageCount(), 2u);
  EXPECT_EQ(store.PeakPageCount(), 3u);
}

TEST(PageStoreTest, FreedSlotsAreReusedLowestFirst) {
  // Regression for the slot leak: Free used to strand the slot forever,
  // so insert/delete workloads grew AllocatedCount() without bound.
  PageStore store;
  PageId pages[4];
  for (int i = 0; i < 4; ++i) {
    pages[i] = store.Allocate(std::make_unique<TestPage>(i));
  }
  EXPECT_EQ(store.AllocatedCount(), 4u);
  store.Free(pages[2]);
  store.Free(pages[0]);
  // Reuse picks the lowest free id first — deterministic for a given
  // operation sequence.
  EXPECT_EQ(store.Allocate(std::make_unique<TestPage>(10)), pages[0]);
  EXPECT_EQ(store.Allocate(std::make_unique<TestPage>(12)), pages[2]);
  EXPECT_EQ(store.AllocatedCount(), 4u);  // the id space did not grow
  EXPECT_EQ(store.PageCount(), 4u);
  EXPECT_EQ(store.TotalAllocations(), 6u);
  // A store with no free slots grows again.
  store.Allocate(std::make_unique<TestPage>(13));
  EXPECT_EQ(store.AllocatedCount(), 5u);
}

TEST(PageStoreTest, AllocatedCountStaysFlatUnderChurn) {
  PageStore store;
  std::vector<PageId> live;
  for (int i = 0; i < 8; ++i) {
    live.push_back(store.Allocate(std::make_unique<TestPage>(i)));
  }
  for (int round = 0; round < 50; ++round) {
    store.Free(live.back());
    live.pop_back();
    live.push_back(store.Allocate(std::make_unique<TestPage>(round)));
  }
  EXPECT_EQ(store.AllocatedCount(), 8u);
  EXPECT_EQ(store.PageCount(), 8u);
  EXPECT_EQ(store.TotalAllocations(), 58u);
}

TEST(BufferPoolTest, ReusedSlotIsNeverServedStale) {
  // A page cached in the pool, freed in the store, and replaced by a new
  // allocation under the same id must be served as the NEW page.
  PageStore store;
  const PageId a = store.Allocate(std::make_unique<TestPage>(1));
  BufferPool pool(&store, 4);
  EXPECT_EQ(static_cast<const TestPage*>(pool.Fetch(a))->tag(), 1);
  store.Free(a);
  const PageId b = store.Allocate(std::make_unique<TestPage>(2));
  ASSERT_EQ(a, b);  // the slot was reused
  EXPECT_EQ(static_cast<const TestPage*>(pool.Fetch(a))->tag(), 2);
}

TEST(BufferPoolDeathTest, FetchOfFreedPageAborts) {
  PageStore store;
  const PageId a = store.Allocate(std::make_unique<TestPage>(1));
  BufferPool pool(&store, 4);
  store.Free(a);
  EXPECT_DEATH(pool.Fetch(a), "freed or out-of-range");
}

TEST(BufferPoolDeathTest, FetchOfOutOfRangePageAborts) {
  PageStore store;
  store.Allocate(std::make_unique<TestPage>(1));
  BufferPool pool(&store, 4);
  EXPECT_DEATH(pool.Fetch(static_cast<PageId>(999)), "freed or out-of-range");
  EXPECT_DEATH(pool.Fetch(kInvalidPage), "freed or out-of-range");
}

TEST(BufferPoolDeathTest, StaleCacheEntryForFreedPageAborts) {
  // Even a page already resident in the LRU cache must not be served
  // once the store has freed it.
  PageStore store;
  const PageId a = store.Allocate(std::make_unique<TestPage>(1));
  BufferPool pool(&store, 4);
  pool.Fetch(a);  // now cached
  store.Free(a);
  EXPECT_DEATH(pool.Fetch(a), "freed or out-of-range");
}

TEST(BufferPoolTest, FirstAccessIsMiss) {
  PageStore store;
  const PageId a = store.Allocate(std::make_unique<TestPage>(1));
  BufferPool pool(&store, 4);
  pool.Fetch(a);
  EXPECT_EQ(pool.stats().accesses, 1u);
  EXPECT_EQ(pool.stats().misses, 1u);
  pool.Fetch(a);
  EXPECT_EQ(pool.stats().accesses, 2u);
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().Hits(), 1u);
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsed) {
  PageStore store;
  PageId pages[3];
  for (int i = 0; i < 3; ++i) {
    pages[i] = store.Allocate(std::make_unique<TestPage>(i));
  }
  BufferPool pool(&store, 2);
  pool.Fetch(pages[0]);  // miss, cache {0}
  pool.Fetch(pages[1]);  // miss, cache {1, 0}
  pool.Fetch(pages[0]);  // hit, cache {0, 1}
  pool.Fetch(pages[2]);  // miss, evicts 1, cache {2, 0}
  pool.Fetch(pages[0]);  // hit
  pool.Fetch(pages[1]);  // miss again (was evicted)
  EXPECT_EQ(pool.stats().misses, 4u);
  EXPECT_EQ(pool.stats().accesses, 6u);
}

TEST(BufferPoolTest, ResetCacheForcesMisses) {
  PageStore store;
  const PageId a = store.Allocate(std::make_unique<TestPage>(1));
  BufferPool pool(&store, 4);
  pool.Fetch(a);
  pool.ResetCache();
  pool.Fetch(a);
  EXPECT_EQ(pool.stats().misses, 2u);
}

TEST(BufferPoolTest, ResetStatsKeepsCache) {
  PageStore store;
  const PageId a = store.Allocate(std::make_unique<TestPage>(1));
  BufferPool pool(&store, 4);
  pool.Fetch(a);
  pool.ResetStats();
  pool.Fetch(a);  // still cached: a hit
  EXPECT_EQ(pool.stats().accesses, 1u);
  EXPECT_EQ(pool.stats().misses, 0u);
}

TEST(BufferPoolTest, LifetimeStatsSurviveResetStats) {
  PageStore store;
  const PageId a = store.Allocate(std::make_unique<TestPage>(1));
  BufferPool pool(&store, 4);
  pool.Fetch(a);
  pool.ResetStats();
  pool.Fetch(a);
  EXPECT_EQ(pool.stats().accesses, 1u);
  EXPECT_EQ(pool.lifetime_stats().accesses, 2u);
  EXPECT_EQ(pool.lifetime_stats().misses, 1u);
}

TEST(BufferPoolTest, CapacityOneThrashes) {
  PageStore store;
  PageId pages[2];
  for (int i = 0; i < 2; ++i) {
    pages[i] = store.Allocate(std::make_unique<TestPage>(i));
  }
  BufferPool pool(&store, 1);
  for (int round = 0; round < 5; ++round) {
    pool.Fetch(pages[0]);
    pool.Fetch(pages[1]);
  }
  EXPECT_EQ(pool.stats().misses, 10u);
}

TEST(BufferPoolTest, LargeCapacityHoldsWorkingSet) {
  PageStore store;
  std::vector<PageId> pages;
  for (int i = 0; i < 8; ++i) {
    pages.push_back(store.Allocate(std::make_unique<TestPage>(i)));
  }
  BufferPool pool(&store, 10);
  for (int round = 0; round < 3; ++round) {
    for (PageId id : pages) pool.Fetch(id);
  }
  EXPECT_EQ(pool.stats().misses, 8u);  // only cold misses
  EXPECT_EQ(pool.CachedPages(), 8u);
}

TEST(BufferPoolTest, EvictionCounter) {
  PageStore store;
  PageId pages[3];
  for (int i = 0; i < 3; ++i) {
    pages[i] = store.Allocate(std::make_unique<TestPage>(i));
  }
  BufferPool pool(&store, 2);
  pool.Fetch(pages[0]);
  pool.Fetch(pages[1]);
  EXPECT_EQ(pool.Evictions(), 0u);
  pool.Fetch(pages[2]);  // evicts pages[0]
  EXPECT_EQ(pool.Evictions(), 1u);
  pool.ResetCache();     // dropping frames is not an eviction
  EXPECT_EQ(pool.Evictions(), 1u);
}

TEST(BufferPoolTest, PinBlocksEviction) {
  PageStore store;
  PageId pages[3];
  for (int i = 0; i < 3; ++i) {
    pages[i] = store.Allocate(std::make_unique<TestPage>(i));
  }
  BufferPool pool(&store, 2);
  PageRef pinned = pool.FetchPinned(pages[0]);  // LRU position after...
  pool.Fetch(pages[1]);                         // ...this access
  EXPECT_EQ(pool.PinnedPages(), 1u);
  // Eviction must skip the pinned LRU frame and take pages[1] instead.
  pool.Fetch(pages[2]);
  pool.Fetch(pages[0]);  // hit: still resident
  EXPECT_EQ(pool.stats().misses, 3u);
  EXPECT_EQ(pool.stats().accesses, 4u);
  pinned.Release();
  EXPECT_EQ(pool.PinnedPages(), 0u);
  // pages[0] became MRU with the hit above, so the next miss evicts
  // pages[2]; the formerly pinned frame stays resident on merit.
  pool.Fetch(pages[1]);  // miss, evicts pages[2]
  pool.Fetch(pages[0]);  // hit
  EXPECT_EQ(pool.stats().misses, 4u);
}

TEST(BufferPoolDeathTest, AllPinnedCannotEvict) {
  PageStore store;
  PageId pages[3];
  for (int i = 0; i < 3; ++i) {
    pages[i] = store.Allocate(std::make_unique<TestPage>(i));
  }
  BufferPool pool(&store, 2);
  PageRef a = pool.FetchPinned(pages[0]);
  PageRef b = pool.FetchPinned(pages[1]);
  EXPECT_DEATH(pool.Fetch(pages[2]), "every frame is pinned");
}

TEST(BufferPoolTest, PageRefMoveTransfersPin) {
  PageStore store;
  const PageId a = store.Allocate(std::make_unique<TestPage>(1));
  BufferPool pool(&store, 2);
  PageRef ref = pool.FetchPinned(a);
  EXPECT_EQ(pool.PinnedPages(), 1u);
  PageRef moved = std::move(ref);
  EXPECT_EQ(pool.PinnedPages(), 1u);  // exactly one pin, now owned by `moved`
  EXPECT_TRUE(static_cast<bool>(moved));
  EXPECT_FALSE(static_cast<bool>(ref));  // NOLINT(bugprone-use-after-move)
  moved.Release();
  EXPECT_EQ(pool.PinnedPages(), 0u);
}

TEST(BufferPoolTest, PageRefMoveResetsSourceCompletely) {
  // Regression: the move operations used to leave a stale id_ in the
  // moved-from ref, so it still claimed the old PageId while holding no
  // pin.
  PageStore store;
  const PageId a = store.Allocate(std::make_unique<TestPage>(1));
  const PageId b = store.Allocate(std::make_unique<TestPage>(2));
  BufferPool pool(&store, 2);

  PageRef ref = pool.FetchPinned(a);
  PageRef moved = std::move(ref);
  EXPECT_EQ(ref.id(), kInvalidPage);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(ref.get(), nullptr);
  EXPECT_FALSE(static_cast<bool>(ref));

  // Move assignment must reset the source the same way (and release the
  // destination's old pin exactly once).
  PageRef target = pool.FetchPinned(b);
  EXPECT_EQ(pool.PinnedPages(), 2u);
  target = std::move(moved);
  EXPECT_EQ(pool.PinnedPages(), 1u);
  EXPECT_EQ(target.id(), a);
  EXPECT_EQ(moved.id(), kInvalidPage);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(moved.get(), nullptr);
}

TEST(BufferPoolTest, PageRefReleaseIsIdempotentAndMovedFromSafe) {
  PageStore store;
  const PageId a = store.Allocate(std::make_unique<TestPage>(1));
  BufferPool pool(&store, 2);

  PageRef ref = pool.FetchPinned(a);
  PageRef moved = std::move(ref);
  // Releasing a moved-from ref must not unpin anything (the pin moved).
  ref.Release();  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(pool.PinnedPages(), 1u);

  moved.Release();
  EXPECT_EQ(pool.PinnedPages(), 0u);
  EXPECT_EQ(moved.id(), kInvalidPage);
  EXPECT_EQ(moved.get(), nullptr);
  // Double release is a no-op, not a double unpin.
  moved.Release();
  EXPECT_EQ(pool.PinnedPages(), 0u);
}

// --- Backend mode: Put / write-back / flush ---

TEST(BufferPoolBackendTest, PutFlushFetchRoundTrip) {
  MemoryPageBackend backend;
  TestCodec codec;
  BufferPool pool(&backend, &codec, 4);
  EXPECT_TRUE(pool.backend_mode());
  ASSERT_TRUE(pool.Put(0, std::make_unique<TestPage>(10)).ok());
  ASSERT_TRUE(pool.Put(1, std::make_unique<TestPage>(11)).ok());
  EXPECT_EQ(pool.DirtyPages(), 2u);
  EXPECT_EQ(backend.LivePageCount(), 0u);  // nothing written yet
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(pool.DirtyPages(), 0u);
  EXPECT_EQ(backend.LivePageCount(), 2u);
  // A fresh pool over the same backend decodes what was written.
  BufferPool reader(&backend, &codec, 4);
  EXPECT_EQ(static_cast<const TestPage*>(reader.Fetch(0))->tag(), 10);
  EXPECT_EQ(static_cast<const TestPage*>(reader.Fetch(1))->tag(), 11);
  EXPECT_EQ(reader.stats().misses, 2u);
  reader.Fetch(0);  // resident: a hit, no backend read
  EXPECT_EQ(reader.stats().misses, 2u);
}

TEST(BufferPoolBackendTest, EvictionWritesBackDirtyVictim) {
  MemoryPageBackend backend;
  TestCodec codec;
  BufferPool pool(&backend, &codec, /*capacity=*/1);
  ASSERT_TRUE(pool.Put(0, std::make_unique<TestPage>(20)).ok());
  // Inserting page 1 must spill dirty page 0 to the backend.
  ASSERT_TRUE(pool.Put(1, std::make_unique<TestPage>(21)).ok());
  EXPECT_EQ(pool.Evictions(), 1u);
  EXPECT_TRUE(backend.IsAllocated(0));
  uint8_t buffer[kPageSize];
  ASSERT_TRUE(backend.Read(0, buffer).ok());
  Result<std::unique_ptr<Page>> decoded = codec.Decode(buffer, 0);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(static_cast<const TestPage*>(decoded.value().get())->tag(), 20);
}

TEST(BufferPoolBackendTest, DestructionFlushesDirtyFrames) {
  MemoryPageBackend backend;
  TestCodec codec;
  {
    BufferPool pool(&backend, &codec, 4);
    ASSERT_TRUE(pool.Put(3, std::make_unique<TestPage>(33)).ok());
    EXPECT_EQ(backend.LivePageCount(), 0u);
  }  // flush-on-destruction
  EXPECT_EQ(backend.LivePageCount(), 1u);
  uint8_t buffer[kPageSize];
  ASSERT_TRUE(backend.Read(3, buffer).ok());
  Result<std::unique_ptr<Page>> decoded = codec.Decode(buffer, 3);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(static_cast<const TestPage*>(decoded.value().get())->tag(), 33);
}

TEST(BufferPoolBackendTest, MissCountsMatchStoreModeExactly) {
  // The shared-LRU property the differential suite relies on, in
  // miniature: the same access pattern costs the same misses in both
  // modes.
  PageStore store;
  MemoryPageBackend backend;
  TestCodec codec;
  PageId ids[3];
  for (int i = 0; i < 3; ++i) {
    ids[i] = store.Allocate(std::make_unique<TestPage>(i));
    uint8_t buffer[kPageSize];
    codec.Encode(TestPage(i), buffer);
    ASSERT_TRUE(backend.Write(ids[i], buffer).ok());
  }
  BufferPool store_pool(&store, 2);
  BufferPool backend_pool(&backend, &codec, 2);
  const PageId pattern[] = {ids[0], ids[1], ids[0], ids[2],
                            ids[0], ids[1], ids[2]};
  for (const PageId id : pattern) {
    store_pool.Fetch(id);
    backend_pool.Fetch(id);
  }
  EXPECT_EQ(store_pool.stats().accesses, backend_pool.stats().accesses);
  EXPECT_EQ(store_pool.stats().misses, backend_pool.stats().misses);
  EXPECT_EQ(store_pool.Evictions(), backend_pool.Evictions());
}

TEST(BufferPoolBackendTest, FetchOfUnwrittenPageAborts) {
  MemoryPageBackend backend;
  TestCodec codec;
  uint8_t buffer[kPageSize];
  codec.Encode(TestPage(1), buffer);
  ASSERT_TRUE(backend.Write(0, buffer).ok());
  BufferPool pool(&backend, &codec, 4);
  EXPECT_DEATH(pool.Fetch(9), "freed or out-of-range");
}

}  // namespace
}  // namespace stindex
