#include <gtest/gtest.h>

#include <memory>

#include "storage/buffer_pool.h"
#include "storage/page_store.h"

namespace stindex {
namespace {

// A trivial page type carrying a tag so tests can verify identity.
class TestPage : public Page {
 public:
  explicit TestPage(int tag) : tag_(tag) {}
  int tag() const { return tag_; }

 private:
  int tag_;
};

TEST(PageStoreTest, AllocateAndGet) {
  PageStore store;
  const PageId a = store.Allocate(std::make_unique<TestPage>(1));
  const PageId b = store.Allocate(std::make_unique<TestPage>(2));
  EXPECT_NE(a, b);
  EXPECT_EQ(static_cast<TestPage*>(store.Get(a))->tag(), 1);
  EXPECT_EQ(static_cast<TestPage*>(store.Get(b))->tag(), 2);
  EXPECT_EQ(store.PageCount(), 2u);
}

TEST(PageStoreTest, FreeReducesLiveCount) {
  PageStore store;
  const PageId a = store.Allocate(std::make_unique<TestPage>(1));
  store.Allocate(std::make_unique<TestPage>(2));
  EXPECT_TRUE(store.IsLive(a));
  store.Free(a);
  EXPECT_FALSE(store.IsLive(a));
  EXPECT_EQ(store.PageCount(), 1u);
  EXPECT_EQ(store.AllocatedCount(), 2u);
}

TEST(PageStoreTest, PeakPageCountTracksHighWaterMark) {
  PageStore store;
  PageId pages[3];
  for (int i = 0; i < 3; ++i) {
    pages[i] = store.Allocate(std::make_unique<TestPage>(i));
  }
  EXPECT_EQ(store.PeakPageCount(), 3u);
  store.Free(pages[0]);
  store.Free(pages[1]);
  EXPECT_EQ(store.PageCount(), 1u);
  EXPECT_EQ(store.PeakPageCount(), 3u);  // the peak never decays
  store.Allocate(std::make_unique<TestPage>(9));
  EXPECT_EQ(store.PageCount(), 2u);
  EXPECT_EQ(store.PeakPageCount(), 3u);
}

TEST(BufferPoolDeathTest, FetchOfFreedPageAborts) {
  PageStore store;
  const PageId a = store.Allocate(std::make_unique<TestPage>(1));
  BufferPool pool(&store, 4);
  store.Free(a);
  EXPECT_DEATH(pool.Fetch(a), "freed or out-of-range");
}

TEST(BufferPoolDeathTest, FetchOfOutOfRangePageAborts) {
  PageStore store;
  store.Allocate(std::make_unique<TestPage>(1));
  BufferPool pool(&store, 4);
  EXPECT_DEATH(pool.Fetch(static_cast<PageId>(999)), "freed or out-of-range");
  EXPECT_DEATH(pool.Fetch(kInvalidPage), "freed or out-of-range");
}

TEST(BufferPoolDeathTest, StaleCacheEntryForFreedPageAborts) {
  // Even a page already resident in the LRU cache must not be served
  // once the store has freed it.
  PageStore store;
  const PageId a = store.Allocate(std::make_unique<TestPage>(1));
  BufferPool pool(&store, 4);
  pool.Fetch(a);  // now cached
  store.Free(a);
  EXPECT_DEATH(pool.Fetch(a), "freed or out-of-range");
}

TEST(BufferPoolTest, FirstAccessIsMiss) {
  PageStore store;
  const PageId a = store.Allocate(std::make_unique<TestPage>(1));
  BufferPool pool(&store, 4);
  pool.Fetch(a);
  EXPECT_EQ(pool.stats().accesses, 1u);
  EXPECT_EQ(pool.stats().misses, 1u);
  pool.Fetch(a);
  EXPECT_EQ(pool.stats().accesses, 2u);
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().Hits(), 1u);
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsed) {
  PageStore store;
  PageId pages[3];
  for (int i = 0; i < 3; ++i) {
    pages[i] = store.Allocate(std::make_unique<TestPage>(i));
  }
  BufferPool pool(&store, 2);
  pool.Fetch(pages[0]);  // miss, cache {0}
  pool.Fetch(pages[1]);  // miss, cache {1, 0}
  pool.Fetch(pages[0]);  // hit, cache {0, 1}
  pool.Fetch(pages[2]);  // miss, evicts 1, cache {2, 0}
  pool.Fetch(pages[0]);  // hit
  pool.Fetch(pages[1]);  // miss again (was evicted)
  EXPECT_EQ(pool.stats().misses, 4u);
  EXPECT_EQ(pool.stats().accesses, 6u);
}

TEST(BufferPoolTest, ResetCacheForcesMisses) {
  PageStore store;
  const PageId a = store.Allocate(std::make_unique<TestPage>(1));
  BufferPool pool(&store, 4);
  pool.Fetch(a);
  pool.ResetCache();
  pool.Fetch(a);
  EXPECT_EQ(pool.stats().misses, 2u);
}

TEST(BufferPoolTest, ResetStatsKeepsCache) {
  PageStore store;
  const PageId a = store.Allocate(std::make_unique<TestPage>(1));
  BufferPool pool(&store, 4);
  pool.Fetch(a);
  pool.ResetStats();
  pool.Fetch(a);  // still cached: a hit
  EXPECT_EQ(pool.stats().accesses, 1u);
  EXPECT_EQ(pool.stats().misses, 0u);
}

TEST(BufferPoolTest, LifetimeStatsSurviveResetStats) {
  PageStore store;
  const PageId a = store.Allocate(std::make_unique<TestPage>(1));
  BufferPool pool(&store, 4);
  pool.Fetch(a);
  pool.ResetStats();
  pool.Fetch(a);
  EXPECT_EQ(pool.stats().accesses, 1u);
  EXPECT_EQ(pool.lifetime_stats().accesses, 2u);
  EXPECT_EQ(pool.lifetime_stats().misses, 1u);
}

TEST(BufferPoolTest, CapacityOneThrashes) {
  PageStore store;
  PageId pages[2];
  for (int i = 0; i < 2; ++i) {
    pages[i] = store.Allocate(std::make_unique<TestPage>(i));
  }
  BufferPool pool(&store, 1);
  for (int round = 0; round < 5; ++round) {
    pool.Fetch(pages[0]);
    pool.Fetch(pages[1]);
  }
  EXPECT_EQ(pool.stats().misses, 10u);
}

TEST(BufferPoolTest, LargeCapacityHoldsWorkingSet) {
  PageStore store;
  std::vector<PageId> pages;
  for (int i = 0; i < 8; ++i) {
    pages.push_back(store.Allocate(std::make_unique<TestPage>(i)));
  }
  BufferPool pool(&store, 10);
  for (int round = 0; round < 3; ++round) {
    for (PageId id : pages) pool.Fetch(id);
  }
  EXPECT_EQ(pool.stats().misses, 8u);  // only cold misses
  EXPECT_EQ(pool.CachedPages(), 8u);
}

}  // namespace
}  // namespace stindex
