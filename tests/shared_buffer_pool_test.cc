#include "storage/shared_buffer_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/page_backend.h"
#include "storage/page_codec.h"
#include "storage/page_store.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace stindex {
namespace {

// Same trivial page/codec pair as storage_test.cc.
class TestPage : public Page {
 public:
  explicit TestPage(int tag) : tag_(tag) {}
  int tag() const { return tag_; }

 private:
  int tag_;
};

class TestCodec : public PageCodec {
 public:
  void Encode(const Page& page, uint8_t* out) const override {
    PageWriter writer = PayloadWriter(out);
    writer.Write<int32_t>(static_cast<const TestPage&>(page).tag());
    SealPage(out, PageKind::kTest);
  }

  Result<std::unique_ptr<Page>> Decode(const uint8_t* page,
                                       PageId id) const override {
    Result<PageReader> payload = OpenPagePayload(page, PageKind::kTest, id);
    if (!payload.ok()) return payload.status();
    PageReader reader = payload.value();
    int32_t tag = 0;
    if (!reader.Read(&tag)) {
      return Status::InvalidArgument("page " + std::to_string(id) +
                                     ": short test page");
    }
    return Result<std::unique_ptr<Page>>(std::make_unique<TestPage>(tag));
  }
};

void FillStore(PageStore* store, size_t pages) {
  for (size_t i = 0; i < pages; ++i) {
    store->Allocate(std::make_unique<TestPage>(static_cast<int>(i)));
  }
}

TEST(SharedBufferPoolTest, StoreModeHitsAndMisses) {
  PageStore store;
  FillStore(&store, 8);
  SharedBufferPoolOptions options;
  options.capacity = 4;
  options.shards = 1;
  SharedBufferPool pool(&store, options);
  EXPECT_EQ(pool.capacity(), 4u);
  EXPECT_EQ(pool.shard_count(), 1u);

  bool missed = false;
  Result<const Page*> page = pool.Pin(0, &missed);
  ASSERT_TRUE(page.ok());
  EXPECT_TRUE(missed);
  EXPECT_EQ(static_cast<const TestPage*>(page.value())->tag(), 0);
  pool.Unpin(0);

  page = pool.Pin(0, &missed);
  ASSERT_TRUE(page.ok());
  EXPECT_FALSE(missed);  // resident now
  pool.Unpin(0);

  const IoStats stats = pool.AggregateStats();
  EXPECT_EQ(stats.accesses, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(pool.CachedPages(), 1u);
  EXPECT_EQ(pool.PinnedPages(), 0u);
}

TEST(SharedBufferPoolTest, CapacityIsTotalAcrossShards) {
  PageStore store;
  FillStore(&store, 64);
  SharedBufferPoolOptions options;
  options.capacity = 10;
  options.shards = 4;
  SharedBufferPool pool(&store, options);
  EXPECT_EQ(pool.shard_count(), 4u);
  bool missed = false;
  for (PageId id = 0; id < 64; ++id) {
    ASSERT_TRUE(pool.Pin(id, &missed).ok());
    pool.Unpin(id);
  }
  // No shard may hold more than its slice: the whole pool never exceeds
  // the requested total.
  EXPECT_LE(pool.CachedPages(), 10u);
  EXPECT_GT(pool.Evictions(), 0u);
}

// The Session's simulated LRU must reproduce a private BufferPool of the
// same capacity exactly: same accesses, same misses, for an arbitrary
// access stream with periodic protocol resets.
TEST(SharedBufferPoolTest, SessionProtocolMatchesPrivateBufferPool) {
  constexpr size_t kPages = 40;
  constexpr size_t kCapacity = 10;
  PageStore store;
  FillStore(&store, kPages);

  // One fixed pseudo-random access stream, reset every 50 accesses.
  Rng rng(1234);
  std::vector<PageId> accesses;
  for (size_t i = 0; i < 2000; ++i) {
    accesses.push_back(static_cast<PageId>(
        rng.UniformInt(0, static_cast<int64_t>(kPages) - 1)));
  }

  BufferPool reference(&store, kCapacity);
  IoStats reference_total;
  for (size_t i = 0; i < accesses.size(); ++i) {
    if (i % 50 == 0) {
      reference.ResetCache();
      reference_total.accesses += reference.stats().accesses;
      reference_total.misses += reference.stats().misses;
      reference.ResetStats();
    }
    reference.Fetch(accesses[i]);
  }
  reference_total.accesses += reference.stats().accesses;
  reference_total.misses += reference.stats().misses;

  SharedBufferPoolOptions options;
  options.capacity = kCapacity;
  SharedBufferPool pool(&store, options);
  SharedBufferPool::Session session(&pool, kCapacity);
  IoStats session_total;
  for (size_t i = 0; i < accesses.size(); ++i) {
    if (i % 50 == 0) {
      session.ResetCache();
      session_total.accesses += session.stats().accesses;
      session_total.misses += session.stats().misses;
      session.ResetStats();
    }
    const PageRef ref = session.FetchPinned(accesses[i]);
    ASSERT_TRUE(static_cast<bool>(ref));
  }
  session_total.accesses += session.stats().accesses;
  session_total.misses += session.stats().misses;

  EXPECT_EQ(session_total.accesses, reference_total.accesses);
  EXPECT_EQ(session_total.misses, reference_total.misses);
  // The shared pool underneath saw every access but deduplicated the
  // loads: real misses cannot exceed the protocol misses.
  EXPECT_EQ(pool.AggregateStats().accesses, accesses.size());
  EXPECT_LE(pool.AggregateStats().misses, session_total.misses);
}

// Satellite: partitioning one query stream across N worker sessions of
// one shared pool must sum to the serial baseline's miss count exactly,
// for every N — the measurement-protocol invariant the old per-worker
// pools only satisfied by accident of their private capacity.
TEST(SharedBufferPoolTest, MissAggregateInvariantAcrossThreadCounts) {
  constexpr size_t kPages = 60;
  constexpr size_t kCapacity = 10;
  constexpr size_t kQueries = 120;
  constexpr size_t kAccessesPerQuery = 30;
  PageStore store;
  FillStore(&store, kPages);

  // Queries are deterministic functions of their index, so any partition
  // replays the same per-query access sequences.
  const auto query_page = [](size_t query, size_t step) {
    Rng rng(Rng::DeriveSeed(777, query));
    PageId id = 0;
    for (size_t s = 0; s <= step; ++s) {
      id = static_cast<PageId>(
          rng.UniformInt(0, static_cast<int64_t>(kPages) - 1));
    }
    return id;
  };

  // Serial baseline through a private BufferPool, reset per query.
  BufferPool reference(&store, kCapacity);
  uint64_t baseline_misses = 0;
  for (size_t q = 0; q < kQueries; ++q) {
    reference.ResetCache();
    reference.ResetStats();
    for (size_t s = 0; s < kAccessesPerQuery; ++s) {
      reference.Fetch(query_page(q, s));
    }
    baseline_misses += reference.stats().misses;
  }

  for (const int threads : {1, 2, 7, 16}) {
    SharedBufferPoolOptions options;
    options.capacity = kCapacity;
    options.pin_overflow = true;  // hashed pin pile-ups must not fail
    SharedBufferPool pool(&store, options);
    const size_t chunks =
        ParallelChunks(threads, kQueries);
    std::vector<uint64_t> chunk_misses(chunks, 0);
    ParallelFor(threads, kQueries,
                [&](size_t chunk, size_t begin, size_t end) {
                  SharedBufferPool::Session session(&pool, kCapacity);
                  for (size_t q = begin; q < end; ++q) {
                    session.ResetCache();
                    session.ResetStats();
                    for (size_t s = 0; s < kAccessesPerQuery; ++s) {
                      const PageRef ref =
                          session.FetchPinned(query_page(q, s));
                      ASSERT_TRUE(static_cast<bool>(ref));
                    }
                    chunk_misses[chunk] += session.stats().misses;
                  }
                });
    uint64_t total = 0;
    for (const uint64_t misses : chunk_misses) total += misses;
    EXPECT_EQ(total, baseline_misses) << "threads=" << threads;
    EXPECT_LE(pool.CachedPages(), kCapacity);
  }
}

TEST(SharedBufferPoolTest, AllPinnedShardFailsCleanlyWhenStrict) {
  PageStore store;
  FillStore(&store, 4);
  SharedBufferPoolOptions options;
  options.capacity = 2;
  options.shards = 1;
  SharedBufferPool pool(&store, options);  // pin_overflow off: strict

  bool missed = false;
  ASSERT_TRUE(pool.Pin(0, &missed).ok());
  ASSERT_TRUE(pool.Pin(1, &missed).ok());
  // Every frame pinned: the next distinct pin must fail cleanly, not
  // abort and not grow the pool.
  Result<const Page*> overflow = pool.Pin(2, &missed);
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(pool.CachedPages(), 2u);
  // Re-pinning a resident page still works (no eviction needed).
  ASSERT_TRUE(pool.Pin(0, &missed).ok());
  pool.Unpin(0);

  pool.Unpin(1);
  ASSERT_TRUE(pool.Pin(2, &missed).ok());  // a victim exists now
  pool.Unpin(2);
  pool.Unpin(0);
}

TEST(SharedBufferPoolTest, PinOverflowGrowsTransientlyAndTrimsBack) {
  PageStore store;
  FillStore(&store, 8);
  SharedBufferPoolOptions options;
  options.capacity = 2;
  options.shards = 1;
  options.pin_overflow = true;
  SharedBufferPool pool(&store, options);

  bool missed = false;
  ASSERT_TRUE(pool.Pin(0, &missed).ok());
  ASSERT_TRUE(pool.Pin(1, &missed).ok());
  ASSERT_TRUE(pool.Pin(2, &missed).ok());  // transient third frame
  EXPECT_EQ(pool.CachedPages(), 3u);
  pool.Unpin(0);
  // Releasing a pin trims clean overage straight back under the slice —
  // the overflow must not linger until the next miss happens to land in
  // this shard.
  EXPECT_LE(pool.CachedPages(), 2u);
  pool.Unpin(1);
  pool.Unpin(2);
  ASSERT_TRUE(pool.Pin(3, &missed).ok());
  pool.Unpin(3);
  EXPECT_LE(pool.CachedPages(), 2u);
}

TEST(SharedBufferPoolDeathTest, UnpinOfNonResidentPageAborts) {
  PageStore store;
  FillStore(&store, 2);
  SharedBufferPoolOptions options;
  options.capacity = 2;
  SharedBufferPool pool(&store, options);
  EXPECT_DEATH(pool.Unpin(1), "non-resident");
}

TEST(SharedBufferPoolTest, PutReplacingPinnedFrameFails) {
  MemoryPageBackend backend;
  TestCodec codec;
  SharedBufferPoolOptions options;
  options.capacity = 4;
  SharedBufferPool pool(&backend, &codec, options);
  ASSERT_TRUE(pool.Put(0, std::make_unique<TestPage>(10)).ok());
  ASSERT_TRUE(pool.FlushAll().ok());

  bool missed = false;
  ASSERT_TRUE(pool.Pin(0, &missed).ok());
  // A concurrent reader may hold the decoded page: replacing it in place
  // must be refused, not dangle the pinner.
  const Status replace = pool.Put(0, std::make_unique<TestPage>(11));
  ASSERT_FALSE(replace.ok());
  EXPECT_EQ(replace.code(), StatusCode::kFailedPrecondition);
  pool.Unpin(0);
  ASSERT_TRUE(pool.Put(0, std::make_unique<TestPage>(11)).ok());
  ASSERT_TRUE(pool.FlushAll().ok());
}

TEST(SharedBufferPoolTest, PublishStatsDoesNotDoubleCount) {
  PageStore store;
  FillStore(&store, 4);
  MetricRegistry& registry = MetricRegistry::Global();
  const std::string scope = "test.shared_publish";
  const uint64_t accesses_before =
      registry.GetCounter("bufferpool." + scope + ".accesses")->Value();
  const uint64_t misses_before =
      registry.GetCounter("bufferpool." + scope + ".misses")->Value();
  {
    SharedBufferPoolOptions options;
    options.capacity = 2;
    options.metric_scope = scope;
    SharedBufferPool pool(&store, options);
    bool missed = false;
    ASSERT_TRUE(pool.Pin(0, &missed).ok());
    pool.Unpin(0);
    pool.PublishStats();  // mid-run publish, e.g. a stats endpoint
    ASSERT_TRUE(pool.Pin(0, &missed).ok());
    pool.Unpin(0);
    pool.PublishStats();
    pool.PublishStats();  // idempotent with no new traffic
    ASSERT_TRUE(pool.Pin(1, &missed).ok());
    pool.Unpin(1);
    // Destruction publishes only the remainder.
  }
  EXPECT_EQ(
      registry.GetCounter("bufferpool." + scope + ".accesses")->Value() -
          accesses_before,
      3u);
  EXPECT_EQ(registry.GetCounter("bufferpool." + scope + ".misses")->Value() -
                misses_before,
            2u);
}

// TSan-targeted stress: >= 8 threads hammer one backend-mode pool with
// session reads, direct pins, Puts on a disjoint id range, and flushes.
// The assertions are deliberately loose — the point is the data-race-free
// execution under ThreadSanitizer and the self-consistency of the
// aggregate counters afterwards.
TEST(SharedBufferPoolTest, ConcurrentStressIsRaceFree) {
  constexpr PageId kReadPages = 48;   // readers touch [0, 48)
  constexpr PageId kWritePages = 16;  // writers touch [48, 64)
  MemoryPageBackend backend;
  TestCodec codec;
  {
    // Seed every page through a writer pool.
    SharedBufferPoolOptions options;
    options.capacity = 8;
    SharedBufferPool seeder(&backend, &codec, options);
    for (PageId id = 0; id < kReadPages + kWritePages; ++id) {
      ASSERT_TRUE(
          seeder.Put(id, std::make_unique<TestPage>(static_cast<int>(id)))
              .ok());
    }
    ASSERT_TRUE(seeder.FlushAll().ok());
  }

  SharedBufferPoolOptions options;
  options.capacity = 12;
  options.shards = 4;
  options.pin_overflow = true;
  SharedBufferPool pool(&backend, &codec, options);

  constexpr int kThreads = 10;
  constexpr int kOpsPerThread = 2000;
  std::atomic<int> put_failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(Rng::DeriveSeed(42, static_cast<uint64_t>(t)));
      SharedBufferPool::Session session(&pool, 0);
      for (int op = 0; op < kOpsPerThread; ++op) {
        const int64_t dice = rng.UniformInt(0, 99);
        if (dice < 80) {
          // Read a shared page; the decoded tag must match its id.
          const PageId id = static_cast<PageId>(
              rng.UniformInt(0, static_cast<int64_t>(kReadPages) - 1));
          const PageRef ref = session.FetchPinned(id);
          ASSERT_TRUE(static_cast<bool>(ref));
          ASSERT_EQ(static_cast<const TestPage*>(ref.get())->tag(),
                    static_cast<int>(id));
        } else if (dice < 95) {
          // Rewrite a page no reader thread ever pins. Racing Puts can
          // still collide with a transiently pinned frame of another
          // writer under pin_overflow; a clean refusal is acceptable.
          const PageId id = static_cast<PageId>(
              kReadPages +
              rng.UniformInt(0, static_cast<int64_t>(kWritePages) - 1));
          const Status status =
              pool.Put(id, std::make_unique<TestPage>(static_cast<int>(id)));
          if (!status.ok()) put_failures.fetch_add(1);
        } else {
          const Status status = pool.FlushAll();
          ASSERT_TRUE(status.ok()) << status.ToString();
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(pool.PinnedPages(), 0u);
  EXPECT_EQ(pool.DirtyPages(), 0u);
  const IoStats stats = pool.AggregateStats();
  EXPECT_GE(stats.accesses, stats.misses);
  EXPECT_GT(stats.accesses, 0u);
  // Writers only Put/Flush; every read access came from the sessions.
  EXPECT_EQ(put_failures.load(), 0);
}

}  // namespace
}  // namespace stindex
