#include "util/threads.h"

#include <cstdlib>

#include "gtest/gtest.h"

namespace stindex {
namespace {

// RAII guard for STINDEX_THREADS so tests cannot leak state.
class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    const char* old = std::getenv("STINDEX_THREADS");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value == nullptr) {
      unsetenv("STINDEX_THREADS");
    } else {
      setenv("STINDEX_THREADS", value, /*overwrite=*/1);
    }
  }
  ~ScopedThreadsEnv() {
    if (had_old_) {
      setenv("STINDEX_THREADS", old_.c_str(), 1);
    } else {
      unsetenv("STINDEX_THREADS");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST(ParseThreadCountTest, AcceptsValidRange) {
  EXPECT_EQ(ParseThreadCount("1", "--threads").value(), 1);
  EXPECT_EQ(ParseThreadCount("7", "--threads").value(), 7);
  EXPECT_EQ(ParseThreadCount(std::to_string(kMaxThreads), "--threads").value(),
            kMaxThreads);
}

TEST(ParseThreadCountTest, RejectsNonPositive) {
  EXPECT_FALSE(ParseThreadCount("0", "--threads").ok());
  EXPECT_FALSE(ParseThreadCount("-3", "--threads").ok());
}

TEST(ParseThreadCountTest, RejectsGarbage) {
  EXPECT_FALSE(ParseThreadCount("", "--threads").ok());
  EXPECT_FALSE(ParseThreadCount("four", "--threads").ok());
  EXPECT_FALSE(ParseThreadCount("4x", "--threads").ok());
  EXPECT_FALSE(ParseThreadCount("4.5", "--threads").ok());
  EXPECT_FALSE(ParseThreadCount(" 4 ", "--threads").ok());
}

TEST(ParseThreadCountTest, RejectsOverflowAndHugeValues) {
  EXPECT_FALSE(ParseThreadCount("99999999999999999999", "--threads").ok());
  EXPECT_FALSE(
      ParseThreadCount(std::to_string(kMaxThreads + 1), "--threads").ok());
}

TEST(ParseThreadCountTest, ErrorNamesTheSource) {
  const Status status = ParseThreadCount("0", "STINDEX_THREADS").status();
  EXPECT_NE(status.message().find("STINDEX_THREADS"), std::string::npos);
}

TEST(ResolveThreadCountTest, FlagWinsOverEnv) {
  ScopedThreadsEnv env("8");
  EXPECT_EQ(ResolveThreadCount("3").value(), 3);
}

TEST(ResolveThreadCountTest, EnvUsedWhenFlagAbsent) {
  ScopedThreadsEnv env("8");
  EXPECT_EQ(ResolveThreadCount("").value(), 8);
}

TEST(ResolveThreadCountTest, DefaultsToOne) {
  ScopedThreadsEnv env(nullptr);
  EXPECT_EQ(ResolveThreadCount("").value(), 1);
}

TEST(ResolveThreadCountTest, EmptyEnvIsUnset) {
  ScopedThreadsEnv env("");
  EXPECT_EQ(ResolveThreadCount("").value(), 1);
}

TEST(ResolveThreadCountTest, BadEnvIsAnErrorNotAFallback) {
  ScopedThreadsEnv env("lots");
  const Result<int> result = ResolveThreadCount("");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("STINDEX_THREADS"),
            std::string::npos);
}

TEST(ResolveThreadCountTest, BadFlagIsAnError) {
  ScopedThreadsEnv env("8");  // a valid env must not rescue a bad flag
  EXPECT_FALSE(ResolveThreadCount("0").ok());
  EXPECT_FALSE(ResolveThreadCount("-1").ok());
  EXPECT_FALSE(ResolveThreadCount("abc").ok());
}

}  // namespace
}  // namespace stindex
