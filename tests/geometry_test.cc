#include <gtest/gtest.h>

#include "geometry/box.h"
#include "geometry/interval.h"
#include "geometry/point.h"
#include "geometry/rect.h"
#include "util/random.h"

namespace stindex {
namespace {

TEST(TimeIntervalTest, DurationAndValidity) {
  const TimeInterval interval(3, 7);
  EXPECT_TRUE(interval.IsValid());
  EXPECT_EQ(interval.Duration(), 4);
  EXPECT_FALSE(TimeInterval(5, 5).IsValid());
  EXPECT_FALSE(TimeInterval(7, 3).IsValid());
}

TEST(TimeIntervalTest, ContainsInstantHalfOpen) {
  const TimeInterval interval(3, 7);
  EXPECT_FALSE(interval.Contains(2));
  EXPECT_TRUE(interval.Contains(3));
  EXPECT_TRUE(interval.Contains(6));
  EXPECT_FALSE(interval.Contains(7));
}

TEST(TimeIntervalTest, ContainsInterval) {
  const TimeInterval outer(2, 10);
  EXPECT_TRUE(outer.Contains(TimeInterval(2, 10)));
  EXPECT_TRUE(outer.Contains(TimeInterval(4, 6)));
  EXPECT_FALSE(outer.Contains(TimeInterval(1, 5)));
  EXPECT_FALSE(outer.Contains(TimeInterval(5, 11)));
}

TEST(TimeIntervalTest, IntersectionSemantics) {
  const TimeInterval a(0, 5);
  const TimeInterval b(5, 10);
  // Half-open: [0,5) and [5,10) share no instant.
  EXPECT_FALSE(a.Intersects(b));
  const TimeInterval c(4, 6);
  EXPECT_TRUE(a.Intersects(c));
  EXPECT_EQ(a.Intersection(c), TimeInterval(4, 5));
  EXPECT_EQ(a.Union(b), TimeInterval(0, 10));
}

TEST(TimeIntervalTest, InfiniteLifetime) {
  const TimeInterval alive(10, kTimeInfinity);
  EXPECT_TRUE(alive.IsValid());
  EXPECT_TRUE(alive.Contains(1000000));
  EXPECT_FALSE(alive.Contains(9));
}

TEST(RectTest, AreaMarginAndCenter) {
  const Rect2D rect(1.0, 2.0, 4.0, 6.0);
  EXPECT_DOUBLE_EQ(rect.Area(), 12.0);
  EXPECT_DOUBLE_EQ(rect.Margin(), 7.0);
  EXPECT_EQ(rect.Center(), Point2D(2.5, 4.0));
  EXPECT_TRUE(rect.IsValid());
}

TEST(RectTest, DegenerateRectsAreValid) {
  const Rect2D point(1.0, 1.0, 1.0, 1.0);
  EXPECT_TRUE(point.IsValid());
  EXPECT_DOUBLE_EQ(point.Area(), 0.0);
  EXPECT_TRUE(point.Contains(Point2D(1.0, 1.0)));
  EXPECT_TRUE(point.Intersects(point));
}

TEST(RectTest, EmptyIdentityForUnion) {
  Rect2D acc = Rect2D::Empty();
  EXPECT_TRUE(acc.IsEmpty());
  EXPECT_DOUBLE_EQ(acc.Area(), 0.0);
  acc.ExpandToInclude(Rect2D(0.2, 0.3, 0.4, 0.5));
  EXPECT_EQ(acc, Rect2D(0.2, 0.3, 0.4, 0.5));
}

TEST(RectTest, ContainsAndIntersects) {
  const Rect2D outer(0.0, 0.0, 1.0, 1.0);
  const Rect2D inner(0.2, 0.2, 0.8, 0.8);
  EXPECT_TRUE(outer.Contains(inner));
  EXPECT_FALSE(inner.Contains(outer));
  EXPECT_TRUE(outer.Intersects(inner));
  // Touching edges intersect (closed rectangles).
  EXPECT_TRUE(outer.Intersects(Rect2D(1.0, 0.0, 2.0, 1.0)));
  EXPECT_FALSE(outer.Intersects(Rect2D(1.1, 0.0, 2.0, 1.0)));
}

TEST(RectTest, OverlapArea) {
  const Rect2D a(0.0, 0.0, 2.0, 2.0);
  const Rect2D b(1.0, 1.0, 3.0, 3.0);
  EXPECT_DOUBLE_EQ(a.OverlapArea(b), 1.0);
  EXPECT_DOUBLE_EQ(b.OverlapArea(a), 1.0);
  EXPECT_DOUBLE_EQ(a.OverlapArea(Rect2D(5, 5, 6, 6)), 0.0);
  // Touching rectangles overlap with zero area.
  EXPECT_DOUBLE_EQ(a.OverlapArea(Rect2D(2, 0, 3, 2)), 0.0);
}

TEST(RectTest, IntersectionOfOverlappingRects) {
  const Rect2D a(0.0, 0.0, 2.0, 2.0);
  const Rect2D b(1.0, 1.0, 3.0, 3.0);
  EXPECT_EQ(a.Intersection(b), Rect2D(1.0, 1.0, 2.0, 2.0));
  EXPECT_EQ(b.Intersection(a), a.Intersection(b));
  // Self-intersection is identity; disjoint intersection is empty.
  EXPECT_EQ(a.Intersection(a), a);
  EXPECT_TRUE(a.Intersection(Rect2D(5, 5, 6, 6)).IsEmpty());
}

TEST(RectTest, IntersectionContainedInBoth) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    const Rect2D a(rng.UniformDouble(0, 1), rng.UniformDouble(0, 1),
                   rng.UniformDouble(1, 2), rng.UniformDouble(1, 2));
    const Rect2D b(rng.UniformDouble(0, 1), rng.UniformDouble(0, 1),
                   rng.UniformDouble(1, 2), rng.UniformDouble(1, 2));
    const Rect2D common = a.Intersection(b);
    if (common.IsEmpty()) {
      EXPECT_FALSE(a.Intersects(b) && a.OverlapArea(b) > 0);
      continue;
    }
    EXPECT_TRUE(a.Contains(common));
    EXPECT_TRUE(b.Contains(common));
    EXPECT_NEAR(common.Area(), a.OverlapArea(b), 1e-12);
  }
}

TEST(RectTest, UnionAndEnlargement) {
  const Rect2D a(0.0, 0.0, 1.0, 1.0);
  const Rect2D b(2.0, 2.0, 3.0, 3.0);
  EXPECT_EQ(a.Union(b), Rect2D(0.0, 0.0, 3.0, 3.0));
  EXPECT_DOUBLE_EQ(a.Enlargement(b), 9.0 - 1.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(Rect2D(0.2, 0.2, 0.5, 0.5)), 0.0);
}

TEST(Box3DTest, VolumeMarginOverlap) {
  const Box3D a(0, 0, 0, 2, 2, 2);
  EXPECT_DOUBLE_EQ(a.Volume(), 8.0);
  EXPECT_DOUBLE_EQ(a.Margin(), 6.0);
  const Box3D b(1, 1, 1, 3, 3, 3);
  EXPECT_DOUBLE_EQ(a.OverlapVolume(b), 1.0);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_EQ(a.Union(b), Box3D(0, 0, 0, 3, 3, 3));
  EXPECT_DOUBLE_EQ(a.Enlargement(b), 27.0 - 8.0);
}

TEST(Box3DTest, DisjointAlongSingleAxis) {
  const Box3D a(0, 0, 0, 1, 1, 1);
  // Overlapping in x and y but disjoint in t.
  const Box3D b(0, 0, 2, 1, 1, 3);
  EXPECT_FALSE(a.Intersects(b));
  EXPECT_DOUBLE_EQ(a.OverlapVolume(b), 0.0);
}

TEST(Box3DTest, EmptyIdentity) {
  Box3D acc = Box3D::Empty();
  EXPECT_TRUE(acc.IsEmpty());
  EXPECT_DOUBLE_EQ(acc.Volume(), 0.0);
  acc.ExpandToInclude(Box3D(0, 0, 0, 1, 1, 1));
  EXPECT_EQ(acc, Box3D(0, 0, 0, 1, 1, 1));
}

TEST(STBoxTest, VolumeIsAreaTimesDuration) {
  const STBox box(Rect2D(0.0, 0.0, 0.5, 0.2), TimeInterval(10, 20));
  EXPECT_DOUBLE_EQ(box.Volume(), 0.5 * 0.2 * 10.0);
}

TEST(STBoxTest, IntersectsRequiresBothDimensions) {
  const STBox a(Rect2D(0, 0, 1, 1), TimeInterval(0, 10));
  const STBox spatial_disjoint(Rect2D(2, 2, 3, 3), TimeInterval(0, 10));
  const STBox temporal_disjoint(Rect2D(0, 0, 1, 1), TimeInterval(10, 20));
  const STBox both(Rect2D(0.5, 0.5, 2, 2), TimeInterval(5, 15));
  EXPECT_FALSE(a.Intersects(spatial_disjoint));
  EXPECT_FALSE(a.Intersects(temporal_disjoint));
  EXPECT_TRUE(a.Intersects(both));
}

TEST(STBoxTest, ToBox3DScalesTime) {
  const STBox box(Rect2D(0.1, 0.2, 0.3, 0.4), TimeInterval(100, 300));
  const Box3D scaled = box.ToBox3D(/*t0=*/0, /*scale=*/0.001);
  EXPECT_DOUBLE_EQ(scaled.lo[2], 0.1);
  EXPECT_DOUBLE_EQ(scaled.hi[2], 0.3);
  EXPECT_DOUBLE_EQ(scaled.lo[0], 0.1);
  EXPECT_DOUBLE_EQ(scaled.hi[1], 0.4);
}

// Property sweep: union always contains operands; overlap is symmetric
// and bounded by both areas.
class RectPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RectPropertyTest, UnionOverlapInvariants) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    auto random_rect = [&rng]() {
      const double x0 = rng.UniformDouble(0, 1);
      const double y0 = rng.UniformDouble(0, 1);
      return Rect2D(x0, y0, x0 + rng.UniformDouble(0, 0.5),
                    y0 + rng.UniformDouble(0, 0.5));
    };
    const Rect2D a = random_rect();
    const Rect2D b = random_rect();
    const Rect2D u = a.Union(b);
    EXPECT_TRUE(u.Contains(a));
    EXPECT_TRUE(u.Contains(b));
    EXPECT_GE(u.Area(), std::max(a.Area(), b.Area()));
    EXPECT_DOUBLE_EQ(a.OverlapArea(b), b.OverlapArea(a));
    EXPECT_LE(a.OverlapArea(b), std::min(a.Area(), b.Area()) + 1e-12);
    EXPECT_EQ(a.Intersects(b), a.OverlapArea(b) > 0.0 ||
                                   (a.Intersects(b) && a.OverlapArea(b) == 0.0));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RectPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace stindex
