#include <gtest/gtest.h>

#include <algorithm>

#include "core/split_pipeline.h"
#include "datagen/random_dataset.h"

namespace stindex {
namespace {

std::vector<Trajectory> SmallDataset(size_t n = 50, uint64_t seed = 71) {
  RandomDatasetConfig config;
  config.num_objects = n;
  config.seed = seed;
  return GenerateRandomDataset(config);
}

TEST(SplitPipelineTest, UnsplitSegmentsAreFullBoxes) {
  const std::vector<Trajectory> objects = SmallDataset();
  const std::vector<SegmentRecord> records = BuildUnsplitSegments(objects);
  ASSERT_EQ(records.size(), objects.size());
  for (size_t i = 0; i < objects.size(); ++i) {
    EXPECT_EQ(records[i].object, objects[i].id());
    EXPECT_EQ(records[i].box, objects[i].FullBox());
  }
}

TEST(SplitPipelineTest, ZeroSplitsEqualsUnsplit) {
  const std::vector<Trajectory> objects = SmallDataset();
  const std::vector<int> zeroes(objects.size(), 0);
  const std::vector<SegmentRecord> via_pipeline =
      BuildSegments(objects, zeroes, SplitMethod::kMerge);
  const std::vector<SegmentRecord> direct = BuildUnsplitSegments(objects);
  ASSERT_EQ(via_pipeline.size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(via_pipeline[i].box, direct[i].box);
  }
}

TEST(SplitPipelineTest, SegmentCountMatchesSplitAllocation) {
  const std::vector<Trajectory> objects = SmallDataset();
  std::vector<int> splits(objects.size(), 0);
  int64_t expected_extra = 0;
  for (size_t i = 0; i < splits.size(); ++i) {
    // Ask for i % 4 splits, clamped by the object's lifetime.
    const int k = static_cast<int>(i % 4);
    const int usable = std::min<int>(
        k, static_cast<int>(objects[i].NumInstants()) - 1);
    splits[i] = usable;
    expected_extra += usable;
  }
  const std::vector<SegmentRecord> records =
      BuildSegments(objects, splits, SplitMethod::kMerge);
  EXPECT_EQ(static_cast<int64_t>(records.size()),
            static_cast<int64_t>(objects.size()) + expected_extra);
}

TEST(SplitPipelineTest, SegmentsPartitionEachLifetime) {
  const std::vector<Trajectory> objects = SmallDataset();
  std::vector<int> splits(objects.size(), 3);
  const std::vector<SegmentRecord> records =
      BuildSegments(objects, splits, SplitMethod::kDp);
  // Group segments per object and check the intervals tile the lifetime.
  for (const Trajectory& object : objects) {
    std::vector<TimeInterval> pieces;
    for (const SegmentRecord& record : records) {
      if (record.object == object.id()) pieces.push_back(record.box.interval);
    }
    std::sort(pieces.begin(), pieces.end(),
              [](const TimeInterval& a, const TimeInterval& b) {
                return a.start < b.start;
              });
    ASSERT_FALSE(pieces.empty());
    EXPECT_EQ(pieces.front().start, object.Lifetime().start);
    EXPECT_EQ(pieces.back().end, object.Lifetime().end);
    for (size_t i = 1; i < pieces.size(); ++i) {
      EXPECT_EQ(pieces[i].start, pieces[i - 1].end);
    }
  }
}

TEST(SplitPipelineTest, SegmentBoxesCoverTheTrajectory) {
  const std::vector<Trajectory> objects = SmallDataset(20, 72);
  std::vector<int> splits(objects.size(), 5);
  const std::vector<SegmentRecord> records =
      BuildSegments(objects, splits, SplitMethod::kMerge);
  for (const Trajectory& object : objects) {
    const TimeInterval life = object.Lifetime();
    for (Time t = life.start; t < life.end; ++t) {
      const Rect2D rect = object.RectAt(t);
      bool covered = false;
      for (const SegmentRecord& record : records) {
        if (record.object == object.id() &&
            record.box.interval.Contains(t) &&
            record.box.rect.Contains(rect)) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << "object " << object.id() << " t=" << t;
    }
  }
}

TEST(SplitPipelineTest, TotalVolumeMatchesSum) {
  const std::vector<Trajectory> objects = SmallDataset(30, 73);
  const std::vector<SegmentRecord> records = BuildUnsplitSegments(objects);
  double expected = 0.0;
  for (const SegmentRecord& record : records) {
    expected += record.box.Volume();
  }
  EXPECT_NEAR(TotalVolume(records), expected, 1e-9);
  EXPECT_DOUBLE_EQ(TotalVolume({}), 0.0);
}

TEST(SplitPipelineTest, SegmentsToBoxesScalesTimeAxis) {
  std::vector<SegmentRecord> records(1);
  records[0].object = 0;
  records[0].box =
      STBox(Rect2D(0.1, 0.2, 0.3, 0.4), TimeInterval(250, 750));
  const std::vector<Box3D> boxes = SegmentsToBoxes(records, 0, 1000);
  ASSERT_EQ(boxes.size(), 1u);
  EXPECT_DOUBLE_EQ(boxes[0].lo[2], 0.25);
  EXPECT_DOUBLE_EQ(boxes[0].hi[2], 0.75);
  EXPECT_DOUBLE_EQ(boxes[0].lo[0], 0.1);
  EXPECT_DOUBLE_EQ(boxes[0].hi[1], 0.4);
  // Non-zero origin shifts the axis.
  const std::vector<Box3D> shifted = SegmentsToBoxes(records, 250, 1000);
  EXPECT_DOUBLE_EQ(shifted[0].lo[2], 0.0);
  EXPECT_DOUBLE_EQ(shifted[0].hi[2], 0.5);
}

TEST(SplitPipelineTest, DpAndMergeAgreeOnEasySplits) {
  // Objects with a single sharp jump: both splitters find the same cut.
  std::vector<Trajectory> objects;
  for (int i = 0; i < 5; ++i) {
    std::vector<MovementTuple> tuples(2);
    tuples[0].interval = TimeInterval(0, 10);
    tuples[0].center_x = Polynomial::Constant(0.1 + 0.1 * i);
    tuples[0].center_y = Polynomial::Constant(0.2);
    tuples[0].extent_x = Polynomial::Constant(0.01);
    tuples[0].extent_y = Polynomial::Constant(0.01);
    tuples[1].interval = TimeInterval(10, 20);
    tuples[1].center_x = Polynomial::Constant(0.8);
    tuples[1].center_y = Polynomial::Constant(0.9);
    tuples[1].extent_x = Polynomial::Constant(0.01);
    tuples[1].extent_y = Polynomial::Constant(0.01);
    objects.emplace_back(static_cast<ObjectId>(i), std::move(tuples));
  }
  const std::vector<int> one_split(objects.size(), 1);
  const std::vector<SegmentRecord> dp =
      BuildSegments(objects, one_split, SplitMethod::kDp);
  const std::vector<SegmentRecord> merge =
      BuildSegments(objects, one_split, SplitMethod::kMerge);
  ASSERT_EQ(dp.size(), merge.size());
  for (size_t i = 0; i < dp.size(); ++i) {
    EXPECT_EQ(dp[i].box.interval, merge[i].box.interval);
  }
}

}  // namespace
}  // namespace stindex
