#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "pprtree/ppr_tree.h"
#include "util/random.h"

namespace stindex {
namespace {

// Reference implementation: linear scan over segment records.
std::vector<PprDataId> ScanSnapshot(const std::vector<SegmentRecord>& records,
                                    const Rect2D& area, Time t) {
  std::vector<PprDataId> hits;
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].box.interval.Contains(t) &&
        records[i].box.rect.Intersects(area)) {
      hits.push_back(i);
    }
  }
  return hits;
}

std::vector<PprDataId> ScanInterval(const std::vector<SegmentRecord>& records,
                                    const Rect2D& area,
                                    const TimeInterval& range) {
  std::vector<PprDataId> hits;
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].box.interval.Intersects(range) &&
        records[i].box.rect.Intersects(area)) {
      hits.push_back(i);
    }
  }
  return hits;
}

std::vector<SegmentRecord> RandomRecords(uint64_t seed, size_t count,
                                         Time domain = 200,
                                         Time max_life = 40) {
  Rng rng(seed);
  std::vector<SegmentRecord> records;
  for (size_t i = 0; i < count; ++i) {
    SegmentRecord record;
    record.object = static_cast<ObjectId>(i);
    const Time life = rng.UniformInt(1, max_life);
    const Time start = rng.UniformInt(0, domain - life);
    const double x = rng.UniformDouble(0, 0.95);
    const double y = rng.UniformDouble(0, 0.95);
    record.box.rect = Rect2D(x, y, x + rng.UniformDouble(0.005, 0.05),
                             y + rng.UniformDouble(0.005, 0.05));
    record.box.interval = TimeInterval(start, start + life);
    records.push_back(record);
  }
  return records;
}

TEST(PprTreeTest, EmptyTreeAnswersNothing) {
  PprTree tree;
  std::vector<PprDataId> results;
  tree.SnapshotQuery(Rect2D(0, 0, 1, 1), 5, &results);
  EXPECT_TRUE(results.empty());
  tree.IntervalQuery(Rect2D(0, 0, 1, 1), TimeInterval(0, 10), &results);
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(tree.Size(), 0u);
  tree.CheckInvariants();
}

TEST(PprTreeTest, SingleRecordLifecycle) {
  PprTree tree;
  tree.Insert(Rect2D(0.4, 0.4, 0.5, 0.5), 10, 0);
  tree.Delete(0, 20);
  std::vector<PprDataId> results;
  // Alive at 10..19 only.
  tree.SnapshotQuery(Rect2D(0, 0, 1, 1), 9, &results);
  EXPECT_TRUE(results.empty());
  tree.SnapshotQuery(Rect2D(0, 0, 1, 1), 10, &results);
  EXPECT_EQ(results.size(), 1u);
  tree.SnapshotQuery(Rect2D(0, 0, 1, 1), 19, &results);
  EXPECT_EQ(results.size(), 1u);
  tree.SnapshotQuery(Rect2D(0, 0, 1, 1), 20, &results);
  EXPECT_TRUE(results.empty());
  // Spatially disjoint query misses.
  tree.SnapshotQuery(Rect2D(0.6, 0.6, 0.9, 0.9), 15, &results);
  EXPECT_TRUE(results.empty());
  tree.CheckInvariants();
}

TEST(PprTreeTest, RecordAliveUntilDeleted) {
  PprTree tree;
  tree.Insert(Rect2D(0.1, 0.1, 0.2, 0.2), 5, 42);
  std::vector<PprDataId> results;
  tree.SnapshotQuery(Rect2D(0, 0, 1, 1), 1000000, &results);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], 42u);
  EXPECT_EQ(tree.AliveCount(), 1u);
}

TEST(PprTreeTest, OutOfOrderUpdatesRejected) {
  PprTree tree;
  tree.Insert(Rect2D(0, 0, 0.1, 0.1), 10, 0);
  EXPECT_DEATH(tree.Insert(Rect2D(0, 0, 0.1, 0.1), 5, 1), "time order");
}

TEST(PprTreeTest, DoubleInsertRejected) {
  PprTree tree;
  tree.Insert(Rect2D(0, 0, 0.1, 0.1), 10, 0);
  EXPECT_DEATH(tree.Insert(Rect2D(0, 0, 0.1, 0.1), 11, 0), "already alive");
}

TEST(PprTreeTest, DeleteOfDeadRecordRejected) {
  PprTree tree;
  tree.Insert(Rect2D(0, 0, 0.1, 0.1), 10, 0);
  tree.Delete(0, 12);
  EXPECT_DEATH(tree.Delete(0, 13), "not alive");
}

TEST(PprTreeTest, VersionSplitOnOverflow) {
  // Insert more records at one instant than a node can hold.
  PprTree tree;
  Rng rng(3);
  std::vector<SegmentRecord> records;
  for (size_t i = 0; i < 200; ++i) {
    SegmentRecord record;
    record.object = static_cast<ObjectId>(i);
    const double x = rng.UniformDouble(0, 0.9);
    const double y = rng.UniformDouble(0, 0.9);
    record.box.rect = Rect2D(x, y, x + 0.05, y + 0.05);
    record.box.interval = TimeInterval(0, 100);
    records.push_back(record);
    tree.Insert(record.box.rect, 0, i);
  }
  tree.CheckInvariants();
  std::vector<PprDataId> results;
  tree.SnapshotQuery(Rect2D(0, 0, 1, 1), 0, &results);
  EXPECT_EQ(results.size(), 200u);
  // A snapshot query returns each logical record exactly once.
  std::sort(results.begin(), results.end());
  EXPECT_EQ(std::adjacent_find(results.begin(), results.end()),
            results.end());
}

TEST(PprTreeTest, WeakVersionUnderflowTriggersConsolidation) {
  // Fill several nodes, then delete almost everything: the structure must
  // keep answering correctly at all times.
  std::vector<SegmentRecord> records = RandomRecords(4, 300, 100, 99);
  // Force everything alive over [0, 100) so deletions drive underflow.
  for (auto& record : records) record.box.interval = TimeInterval(0, 100);
  PprTree tree;
  for (size_t i = 0; i < records.size(); ++i) {
    tree.Insert(records[i].box.rect, 0, i);
  }
  // Kill all but 5 records, in time order, a few per instant.
  Time now = 1;
  for (size_t i = 0; i + 5 < records.size(); ++i) {
    tree.Delete(i, now);
    records[i].box.interval = TimeInterval(0, now);
    if (i % 4 == 3) ++now;
  }
  tree.CheckInvariants();
  // Snapshot at every probe time matches the scan.
  for (Time t : {0, 1, 5, 20, 50, 80}) {
    std::vector<PprDataId> results;
    tree.SnapshotQuery(Rect2D(0, 0, 1, 1), t, &results);
    std::sort(results.begin(), results.end());
    std::vector<PprDataId> expected =
        ScanSnapshot(records, Rect2D(0, 0, 1, 1), t);
    EXPECT_EQ(results, expected) << "t=" << t;
  }
}

TEST(PprTreeTest, EraClosesWhenEverythingDies) {
  PprTree tree;
  tree.Insert(Rect2D(0, 0, 0.1, 0.1), 0, 0);
  tree.Insert(Rect2D(0.2, 0.2, 0.3, 0.3), 1, 1);
  tree.Delete(0, 5);
  tree.Delete(1, 7);
  std::vector<PprDataId> results;
  tree.SnapshotQuery(Rect2D(0, 0, 1, 1), 6, &results);
  EXPECT_EQ(results.size(), 1u);
  tree.SnapshotQuery(Rect2D(0, 0, 1, 1), 7, &results);
  EXPECT_TRUE(results.empty());
  // Re-insertion after total death starts a new era.
  tree.Insert(Rect2D(0.5, 0.5, 0.6, 0.6), 10, 2);
  tree.SnapshotQuery(Rect2D(0, 0, 1, 1), 12, &results);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], 2u);
  EXPECT_GE(tree.NumRoots(), 2u);
  tree.CheckInvariants();
}

TEST(PprTreeTest, IntervalQueryDeduplicates) {
  // A record that survives several version splits must be reported once.
  PprTree tree;
  std::vector<SegmentRecord> records = RandomRecords(5, 400, 150, 149);
  for (auto& record : records) record.box.interval = TimeInterval(0, 150);
  for (size_t i = 0; i < records.size(); ++i) {
    tree.Insert(records[i].box.rect, 0, i);
  }
  Time now = 1;
  for (size_t i = 0; i + 30 < records.size(); ++i) {
    tree.Delete(i, now);
    records[i].box.interval = TimeInterval(0, now);
    if (i % 3 == 2) ++now;
  }
  std::vector<PprDataId> results;
  tree.IntervalQuery(Rect2D(0, 0, 1, 1), TimeInterval(0, 150), &results);
  std::sort(results.begin(), results.end());
  EXPECT_EQ(std::adjacent_find(results.begin(), results.end()),
            results.end());
  EXPECT_EQ(results.size(), records.size());
}

class PprEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PprEquivalenceTest, SnapshotAndIntervalMatchScan) {
  const std::vector<SegmentRecord> records =
      RandomRecords(GetParam(), 600, 200, 40);
  std::unique_ptr<PprTree> tree = BuildPprTree(records);
  tree->CheckInvariants();
  EXPECT_EQ(tree->Size(), records.size());

  Rng rng(GetParam() + 1000);
  for (int q = 0; q < 40; ++q) {
    const double x = rng.UniformDouble(0, 0.8);
    const double y = rng.UniformDouble(0, 0.8);
    const Rect2D area(x, y, x + rng.UniformDouble(0.02, 0.2),
                      y + rng.UniformDouble(0.02, 0.2));
    const Time t = rng.UniformInt(0, 199);
    std::vector<PprDataId> results;
    tree->SnapshotQuery(area, t, &results);
    std::sort(results.begin(), results.end());
    EXPECT_EQ(results, ScanSnapshot(records, area, t)) << "snapshot " << q;

    const Time d = rng.UniformInt(1, 20);
    const Time start = rng.UniformInt(0, 199 - d);
    const TimeInterval range(start, start + d);
    tree->IntervalQuery(area, range, &results);
    std::sort(results.begin(), results.end());
    EXPECT_EQ(results, ScanInterval(records, area, range))
        << "interval " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PprEquivalenceTest,
                         ::testing::Values(201, 202, 203, 204, 205, 206));

class PprConfigTest
    : public ::testing::TestWithParam<std::tuple<size_t, double, double>> {};

TEST_P(PprConfigTest, CorrectUnderAlternativeParameters) {
  const auto [capacity, svu, svo] = GetParam();
  PprConfig config;
  config.max_entries = capacity;
  config.p_svu = svu;
  config.p_svo = svo;
  const std::vector<SegmentRecord> records = RandomRecords(77, 400, 150, 30);
  std::unique_ptr<PprTree> tree = BuildPprTree(records, config);
  tree->CheckInvariants();
  Rng rng(78);
  for (int q = 0; q < 25; ++q) {
    const double x = rng.UniformDouble(0, 0.8);
    const double y = rng.UniformDouble(0, 0.8);
    const Rect2D area(x, y, x + 0.15, y + 0.15);
    const Time t = rng.UniformInt(0, 149);
    std::vector<PprDataId> results;
    tree->SnapshotQuery(area, t, &results);
    std::sort(results.begin(), results.end());
    EXPECT_EQ(results, ScanSnapshot(records, area, t));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PprConfigTest,
    ::testing::Values(std::make_tuple(10, 0.4, 0.8),
                      std::make_tuple(20, 0.3, 0.7),
                      std::make_tuple(50, 0.4, 0.8),
                      std::make_tuple(8, 0.45, 0.75)));

TEST(PprTreeTest, SnapshotCountMatchesQuerySize) {
  const std::vector<SegmentRecord> records = RandomRecords(15, 500);
  std::unique_ptr<PprTree> tree = BuildPprTree(records);
  Rng rng(16);
  for (int q = 0; q < 30; ++q) {
    const double x = rng.UniformDouble(0, 0.8);
    const double y = rng.UniformDouble(0, 0.8);
    const Rect2D area(x, y, x + 0.2, y + 0.2);
    const Time t = rng.UniformInt(0, 199);
    std::vector<PprDataId> hits;
    tree->SnapshotQuery(area, t, &hits);
    EXPECT_EQ(tree->SnapshotCount(area, t), hits.size());
  }
}

TEST(PprTreeTest, OccupancyHistogramMatchesPerInstantCounts) {
  const std::vector<SegmentRecord> records = RandomRecords(17, 300);
  std::unique_ptr<PprTree> tree = BuildPprTree(records);
  const Rect2D area(0.1, 0.1, 0.6, 0.6);
  const TimeInterval range(40, 70);
  const std::vector<size_t> histogram =
      tree->OccupancyHistogram(area, range);
  ASSERT_EQ(histogram.size(), 30u);
  for (Time t = range.start; t < range.end; ++t) {
    EXPECT_EQ(histogram[static_cast<size_t>(t - range.start)],
              ScanSnapshot(records, area, t).size())
        << "t=" << t;
  }
}

TEST(PprTreeTest, QueryIoProportionalToAliveSetNotHistory) {
  // The PPR promise: snapshot cost tracks |alive(t)|, not total history.
  // Build a long evolution with a small alive set at every instant.
  std::vector<SegmentRecord> records;
  Rng rng(9);
  for (size_t i = 0; i < 3000; ++i) {
    SegmentRecord record;
    record.object = static_cast<ObjectId>(i);
    const Time start = static_cast<Time>(i / 4);  // ~4 born per instant
    const double x = rng.UniformDouble(0, 0.9);
    const double y = rng.UniformDouble(0, 0.9);
    record.box.rect = Rect2D(x, y, x + 0.02, y + 0.02);
    record.box.interval = TimeInterval(start, start + 10);
    records.push_back(record);
  }
  std::unique_ptr<PprTree> tree = BuildPprTree(records);
  tree->CheckInvariants();
  // Alive set is ~40 records: one or two leaf levels worth of pages.
  uint64_t worst = 0;
  for (Time t : {50, 200, 400, 600}) {
    tree->ResetQueryState();
    std::vector<PprDataId> results;
    tree->SnapshotQuery(Rect2D(0, 0, 1, 1), t, &results);
    worst = std::max(worst, tree->stats().misses);
  }
  // Far fewer pages than the full structure.
  EXPECT_LT(worst, tree->PageCount() / 10);
}

}  // namespace
}  // namespace stindex
