// Differential fuzzing: random evolutions (bursty same-instant updates,
// degenerate rects, immortal records, random node capacities) are
// replayed into the PPR-tree and the HR-tree, then bombarded with random
// snapshot/interval queries whose answers must match a linear-scan
// reference exactly — across both structures, which implement partial
// persistence in entirely different ways.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "datagen/query_gen.h"
#include "datagen/random_dataset.h"
#include "hrtree/hr_tree.h"
#include "live/live_tier.h"
#include "pprtree/ppr_tree.h"
#include "storage/fault_backend.h"
#include "storage/file_backend.h"
#include "util/random.h"

namespace stindex {
namespace {

struct FuzzRecord {
  Rect2D rect;
  TimeInterval life;  // end may be kTimeInfinity (never deleted)
};

std::vector<FuzzRecord> RandomEvolution(Rng& rng, size_t count,
                                        Time domain) {
  std::vector<FuzzRecord> records;
  for (size_t i = 0; i < count; ++i) {
    FuzzRecord record;
    // Bursty: many records share the same few timestamps.
    const Time start = rng.Bernoulli(0.3)
                           ? (rng.UniformInt(0, 4)) * domain / 5
                           : rng.UniformInt(0, domain - 1);
    Time end;
    if (rng.Bernoulli(0.15)) {
      end = kTimeInfinity;  // immortal
    } else {
      end = start + rng.UniformInt(1, domain / 3);
    }
    record.life = TimeInterval(start, end);
    const double x = rng.UniformDouble(0, 1);
    const double y = rng.UniformDouble(0, 1);
    // 20% degenerate points, else small rects.
    const double w = rng.Bernoulli(0.2) ? 0.0 : rng.UniformDouble(0, 0.08);
    const double h = w == 0.0 ? 0.0 : rng.UniformDouble(0.001, 0.08);
    record.rect = Rect2D(x, y, x + w, y + h);
    records.push_back(record);
  }
  return records;
}

template <typename Tree>
void Replay(const std::vector<FuzzRecord>& records, Tree* tree) {
  struct Event {
    Time time;
    bool is_insert;
    uint64_t record;
  };
  std::vector<Event> events;
  for (uint64_t i = 0; i < records.size(); ++i) {
    events.push_back({records[i].life.start, true, i});
    if (records[i].life.end != kTimeInfinity) {
      events.push_back({records[i].life.end, false, i});
    }
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.is_insert != b.is_insert) return !a.is_insert;
    return a.record < b.record;
  });
  for (const Event& event : events) {
    if (event.is_insert) {
      tree->Insert(records[event.record].rect, event.time, event.record);
    } else {
      tree->Delete(event.record, event.time);
    }
  }
}

std::vector<uint64_t> ScanInterval(const std::vector<FuzzRecord>& records,
                                   const Rect2D& area,
                                   const TimeInterval& range) {
  std::vector<uint64_t> hits;
  for (uint64_t i = 0; i < records.size(); ++i) {
    if (records[i].life.Intersects(range) &&
        records[i].rect.Intersects(area)) {
      hits.push_back(i);
    }
  }
  return hits;
}

class FuzzDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzDifferentialTest, PprAndHrMatchReference) {
  Rng rng(GetParam());
  const Time domain = 60 + rng.UniformInt(0, 140);
  const size_t count = 150 + static_cast<size_t>(rng.UniformInt(0, 450));
  const std::vector<FuzzRecord> records =
      RandomEvolution(rng, count, domain);

  PprConfig ppr_config;
  ppr_config.max_entries = static_cast<size_t>(rng.UniformInt(8, 50));
  PprTree ppr(ppr_config);
  Replay(records, &ppr);
  ppr.CheckInvariants();

  HrConfig hr_config;
  hr_config.max_entries = static_cast<size_t>(rng.UniformInt(6, 50));
  hr_config.min_entries = std::max<size_t>(2, hr_config.max_entries / 3);
  HrTree hr(hr_config);
  Replay(records, &hr);
  hr.CheckInvariants();

  std::vector<PprDataId> ppr_hits;
  std::vector<HrDataId> hr_hits;
  for (int q = 0; q < 80; ++q) {
    Rect2D area;
    if (rng.Bernoulli(0.1)) {
      area = Rect2D(0, 0, 1, 1);  // everything
    } else {
      const double x = rng.UniformDouble(0, 0.9);
      const double y = rng.UniformDouble(0, 0.9);
      area = Rect2D(x, y, x + rng.UniformDouble(0, 0.3),
                    y + rng.UniformDouble(0, 0.3));
    }
    // Edge times included: instant 0, far future, empty-adjacent eras.
    Time start;
    switch (q % 4) {
      case 0:
        start = 0;
        break;
      case 1:
        start = domain - 1;
        break;
      case 2:
        start = domain + rng.UniformInt(0, 100);  // beyond all deletes
        break;
      default:
        start = rng.UniformInt(0, domain - 1);
    }
    const Time duration = 1 + rng.UniformInt(0, domain / 2);
    const TimeInterval range(start, start + duration);

    const std::vector<uint64_t> expected =
        ScanInterval(records, area, range);

    ppr.IntervalQuery(area, range, &ppr_hits);
    std::sort(ppr_hits.begin(), ppr_hits.end());
    EXPECT_EQ(ppr_hits, expected)
        << "ppr seed=" << GetParam() << " q=" << q;

    hr.IntervalQuery(area, range, &hr_hits);
    std::sort(hr_hits.begin(), hr_hits.end());
    EXPECT_EQ(hr_hits, expected) << "hr seed=" << GetParam() << " q=" << q;

    // Snapshot at the interval start must match a duration-1 interval.
    ppr.SnapshotQuery(area, range.start, &ppr_hits);
    std::sort(ppr_hits.begin(), ppr_hits.end());
    EXPECT_EQ(ppr_hits,
              ScanInterval(records, area,
                           TimeInterval(range.start, range.start + 1)))
        << "ppr snapshot seed=" << GetParam() << " q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferentialTest,
                         ::testing::Range<uint64_t>(1000, 1012));

// ---------------------------------------------------------------------------
// Live-tier fuzzing: randomized interleaved update/query/crash schedules.
//
// Each seed draws a random dataset, random tier knobs (capacity /
// duration / buffer), random queries, a random crash point, a random
// mid-stream pack point (the historical tree freezes into a read-only
// mmap snapshot layer while a fresh tree takes over migration), and a
// random commit cadence, then runs the schedule once per querier-thread
// count in {1, 2, 7}: a writer streams updates (crashing partway if the
// trigger fires) while querier threads hammer IntervalQuery
// concurrently. Two invariants must hold, both reported with the seed on
// failure:
//
//   1. Every concurrently observed answer is a subset of the final
//      answer — answers only accumulate: live rects are exact, sealed
//      segments cover them, and the migrated segment list only grows.
//   2. After crash recovery (reopen, WAL replay, re-ingest of the
//      unacknowledged tail) and Finish, every answer is byte-identical
//      to a never-crashed, never-packed reference run of the same
//      schedule — packing is invisible to queries, and a crash after an
//      unjournaled pack recovers to the pre-pack layering with the same
//      answers.
// ---------------------------------------------------------------------------

std::vector<STQuery> RandomLiveQueries(Rng& rng, Time domain, int count) {
  std::vector<STQuery> queries;
  for (int i = 0; i < count; ++i) {
    STQuery query;
    const double x = rng.UniformDouble(0, 0.8);
    const double y = rng.UniformDouble(0, 0.8);
    query.area = Rect2D(x, y, x + rng.UniformDouble(0.05, 0.4),
                        y + rng.UniformDouble(0.05, 0.4));
    const Time start = rng.UniformInt(0, domain - 1);
    query.range =
        TimeInterval(start, start + 1 + rng.UniformInt(0, domain / 2));
    queries.push_back(query);
  }
  return queries;
}

std::vector<std::vector<ObjectId>> FinalAnswers(
    const LiveTier& tier, const std::vector<STQuery>& queries) {
  std::vector<std::vector<ObjectId>> answers;
  for (const STQuery& query : queries) {
    std::vector<ObjectId> answer;
    tier.IntervalQuery(query.area, query.range, &answer);
    answers.push_back(std::move(answer));
  }
  return answers;
}

class LiveTierFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LiveTierFuzzTest, InterleavedUpdatesQueriesAndCrashes) {
  const uint64_t seed = GetParam();
  Rng rng(seed);

  RandomDatasetConfig dataset_config;
  dataset_config.num_objects = static_cast<size_t>(rng.UniformInt(20, 45));
  dataset_config.time_domain = rng.UniformInt(80, 160);
  dataset_config.max_lifetime = rng.UniformInt(15, 40);
  dataset_config.min_extent = 0.01;
  dataset_config.max_extent = 0.06;
  dataset_config.seed = Rng::DeriveSeed(seed, 1);
  const std::vector<Trajectory> objects =
      GenerateRandomDataset(dataset_config);
  const std::vector<LiveObservation> stream = MakeObservationStream(objects);

  LiveTierOptions options;
  options.index.capacity = static_cast<size_t>(rng.UniformInt(4, 16));
  options.index.duration =
      rng.Bernoulli(0.3) ? rng.UniformInt(20, 50) : 0;
  options.index.buffer =
      rng.Bernoulli(0.5)
          ? static_cast<size_t>(rng.UniformInt(60, 200))
          : 0;

  const std::vector<STQuery> queries =
      RandomLiveQueries(rng, dataset_config.time_domain, 12);
  const size_t commit_every = static_cast<size_t>(rng.UniformInt(4, 40));
  const uint64_t crash_at = static_cast<uint64_t>(rng.UniformInt(1, 120));
  // Pack the historical tree partway through the update stream (0 in a
  // third of the schedules: no pack).
  const size_t pack_at =
      rng.Bernoulli(0.33)
          ? 0
          : static_cast<size_t>(
                rng.UniformInt(1, static_cast<int64_t>(stream.size())));

  // The never-crashed reference for this schedule (WAL on memory: the
  // journal's backend must not change the answers either).
  std::vector<std::vector<ObjectId>> reference;
  {
    Result<std::unique_ptr<LiveTier>> tier =
        LiveTier::Open(options, std::make_unique<MemoryPageBackend>());
    ASSERT_TRUE(tier.ok()) << "seed=" << seed;
    for (size_t i = 0; i < stream.size(); ++i) {
      ASSERT_TRUE(tier.value()->Apply(stream[i]).ok()) << "seed=" << seed;
      if ((i + 1) % commit_every == 0) {
        ASSERT_TRUE(tier.value()->Commit().ok()) << "seed=" << seed;
      }
    }
    ASSERT_TRUE(tier.value()->Finish().ok()) << "seed=" << seed;
    reference = FinalAnswers(*tier.value(), queries);
  }

  for (const int querier_threads : {1, 2, 7}) {
    const std::string path = ::testing::TempDir() + "/fuzz_live_" +
                             std::to_string(seed) + "_" +
                             std::to_string(querier_threads) + ".stpages";

    Result<std::unique_ptr<FilePageBackend>> file =
        FilePageBackend::Create(path);
    ASSERT_TRUE(file.ok()) << "seed=" << seed;
    FilePageBackend* raw_file = file.value().get();
    FaultInjectingBackend::Faults faults;
    faults.crash_at_write = crash_at;
    auto fault = std::make_unique<FaultInjectingBackend>(
        std::move(file).value(), faults);

    Result<std::unique_ptr<LiveTier>> tier =
        LiveTier::Open(options, std::move(fault));
    ASSERT_TRUE(tier.ok()) << "seed=" << seed;

    // Queriers record (query index, answer) pairs while the writer runs;
    // each holds its own Rng (shared Rngs are a data race).
    std::atomic<bool> done{false};
    std::vector<std::vector<std::pair<size_t, std::vector<ObjectId>>>>
        observed(static_cast<size_t>(querier_threads));
    std::vector<std::thread> queriers;
    for (int t = 0; t < querier_threads; ++t) {
      queriers.emplace_back([&, t] {
        Rng thread_rng(Rng::DeriveSeed(seed, 100 + static_cast<uint64_t>(t)));
        // Bounded so heavy thread counts don't starve the writer (and so
        // sanitizer runs stay fast); 200 overlapped answers per querier
        // is plenty of interleaving.
        while (!done.load(std::memory_order_acquire) &&
               observed[static_cast<size_t>(t)].size() < 200) {
          const size_t q = static_cast<size_t>(
              thread_rng.UniformInt(0, static_cast<int64_t>(queries.size()) - 1));
          std::vector<ObjectId> answer;
          tier.value()->IntervalQuery(queries[q].area, queries[q].range,
                                      &answer);
          observed[static_cast<size_t>(t)].emplace_back(q, std::move(answer));
        }
      });
    }

    const std::string snap_path = ::testing::TempDir() + "/fuzz_snap_" +
                                  std::to_string(seed) + "_" +
                                  std::to_string(querier_threads) + ".stsnap";
    size_t acked = 0;
    bool crashed = false;
    for (size_t i = 0; i < stream.size() && !crashed; ++i) {
      if (!tier.value()->Apply(stream[i]).ok()) {
        crashed = true;
        break;
      }
      if ((i + 1) % commit_every == 0) {
        if (!tier.value()->Commit().ok()) {
          crashed = true;
          break;
        }
        acked = i + 1;
      }
      if (pack_at != 0 && i + 1 == pack_at) {
        // The snapshot file is outside the fault-injected WAL, so the
        // pack itself must succeed; queriers keep hammering the tier
        // while the historical tree freezes into a zero-copy layer.
        ASSERT_TRUE(tier.value()->PackHistorical(snap_path).ok())
            << "seed=" << seed;
      }
    }
    if (!crashed) {
      crashed = !tier.value()->Finish().ok();
      if (!crashed) acked = stream.size();
    }
    done.store(true, std::memory_order_release);
    for (std::thread& thread : queriers) thread.join();

    if (crashed) {
      raw_file->Abandon();
      tier.value().reset();
      Result<std::unique_ptr<FilePageBackend>> reopened =
          FilePageBackend::Open(path);
      ASSERT_TRUE(reopened.ok()) << "seed=" << seed;
      tier = LiveTier::Open(options, std::move(reopened).value());
      ASSERT_TRUE(tier.ok())
          << "seed=" << seed << " " << tier.status().ToString();
      for (size_t i = acked; i < stream.size(); ++i) {
        ASSERT_TRUE(tier.value()->Apply(stream[i]).ok()) << "seed=" << seed;
      }
      ASSERT_TRUE(tier.value()->Finish().ok()) << "seed=" << seed;
    }

    // Invariant 2: the finished (possibly recovered) run answers exactly
    // like the never-crashed reference.
    const std::vector<std::vector<ObjectId>> final_answers =
        FinalAnswers(*tier.value(), queries);
    EXPECT_EQ(final_answers, reference)
        << "seed=" << seed << " threads=" << querier_threads
        << " crashed=" << crashed;

    // Invariant 1: every concurrent observation is a subset of the final
    // answer for its query.
    for (int t = 0; t < querier_threads; ++t) {
      for (const auto& entry : observed[static_cast<size_t>(t)]) {
        EXPECT_TRUE(std::includes(final_answers[entry.first].begin(),
                                  final_answers[entry.first].end(),
                                  entry.second.begin(), entry.second.end()))
            << "seed=" << seed << " threads=" << querier_threads
            << " querier=" << t << " q=" << entry.first;
      }
    }

    std::remove(path.c_str());
    std::remove(snap_path.c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LiveTierFuzzTest,
                         ::testing::Range<uint64_t>(7000, 7004));

}  // namespace
}  // namespace stindex
