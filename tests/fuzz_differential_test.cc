// Differential fuzzing: random evolutions (bursty same-instant updates,
// degenerate rects, immortal records, random node capacities) are
// replayed into the PPR-tree and the HR-tree, then bombarded with random
// snapshot/interval queries whose answers must match a linear-scan
// reference exactly — across both structures, which implement partial
// persistence in entirely different ways.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "hrtree/hr_tree.h"
#include "pprtree/ppr_tree.h"
#include "util/random.h"

namespace stindex {
namespace {

struct FuzzRecord {
  Rect2D rect;
  TimeInterval life;  // end may be kTimeInfinity (never deleted)
};

std::vector<FuzzRecord> RandomEvolution(Rng& rng, size_t count,
                                        Time domain) {
  std::vector<FuzzRecord> records;
  for (size_t i = 0; i < count; ++i) {
    FuzzRecord record;
    // Bursty: many records share the same few timestamps.
    const Time start = rng.Bernoulli(0.3)
                           ? (rng.UniformInt(0, 4)) * domain / 5
                           : rng.UniformInt(0, domain - 1);
    Time end;
    if (rng.Bernoulli(0.15)) {
      end = kTimeInfinity;  // immortal
    } else {
      end = start + rng.UniformInt(1, domain / 3);
    }
    record.life = TimeInterval(start, end);
    const double x = rng.UniformDouble(0, 1);
    const double y = rng.UniformDouble(0, 1);
    // 20% degenerate points, else small rects.
    const double w = rng.Bernoulli(0.2) ? 0.0 : rng.UniformDouble(0, 0.08);
    const double h = w == 0.0 ? 0.0 : rng.UniformDouble(0.001, 0.08);
    record.rect = Rect2D(x, y, x + w, y + h);
    records.push_back(record);
  }
  return records;
}

template <typename Tree>
void Replay(const std::vector<FuzzRecord>& records, Tree* tree) {
  struct Event {
    Time time;
    bool is_insert;
    uint64_t record;
  };
  std::vector<Event> events;
  for (uint64_t i = 0; i < records.size(); ++i) {
    events.push_back({records[i].life.start, true, i});
    if (records[i].life.end != kTimeInfinity) {
      events.push_back({records[i].life.end, false, i});
    }
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.is_insert != b.is_insert) return !a.is_insert;
    return a.record < b.record;
  });
  for (const Event& event : events) {
    if (event.is_insert) {
      tree->Insert(records[event.record].rect, event.time, event.record);
    } else {
      tree->Delete(event.record, event.time);
    }
  }
}

std::vector<uint64_t> ScanInterval(const std::vector<FuzzRecord>& records,
                                   const Rect2D& area,
                                   const TimeInterval& range) {
  std::vector<uint64_t> hits;
  for (uint64_t i = 0; i < records.size(); ++i) {
    if (records[i].life.Intersects(range) &&
        records[i].rect.Intersects(area)) {
      hits.push_back(i);
    }
  }
  return hits;
}

class FuzzDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzDifferentialTest, PprAndHrMatchReference) {
  Rng rng(GetParam());
  const Time domain = 60 + rng.UniformInt(0, 140);
  const size_t count = 150 + static_cast<size_t>(rng.UniformInt(0, 450));
  const std::vector<FuzzRecord> records =
      RandomEvolution(rng, count, domain);

  PprConfig ppr_config;
  ppr_config.max_entries = static_cast<size_t>(rng.UniformInt(8, 50));
  PprTree ppr(ppr_config);
  Replay(records, &ppr);
  ppr.CheckInvariants();

  HrConfig hr_config;
  hr_config.max_entries = static_cast<size_t>(rng.UniformInt(6, 50));
  hr_config.min_entries = std::max<size_t>(2, hr_config.max_entries / 3);
  HrTree hr(hr_config);
  Replay(records, &hr);
  hr.CheckInvariants();

  std::vector<PprDataId> ppr_hits;
  std::vector<HrDataId> hr_hits;
  for (int q = 0; q < 80; ++q) {
    Rect2D area;
    if (rng.Bernoulli(0.1)) {
      area = Rect2D(0, 0, 1, 1);  // everything
    } else {
      const double x = rng.UniformDouble(0, 0.9);
      const double y = rng.UniformDouble(0, 0.9);
      area = Rect2D(x, y, x + rng.UniformDouble(0, 0.3),
                    y + rng.UniformDouble(0, 0.3));
    }
    // Edge times included: instant 0, far future, empty-adjacent eras.
    Time start;
    switch (q % 4) {
      case 0:
        start = 0;
        break;
      case 1:
        start = domain - 1;
        break;
      case 2:
        start = domain + rng.UniformInt(0, 100);  // beyond all deletes
        break;
      default:
        start = rng.UniformInt(0, domain - 1);
    }
    const Time duration = 1 + rng.UniformInt(0, domain / 2);
    const TimeInterval range(start, start + duration);

    const std::vector<uint64_t> expected =
        ScanInterval(records, area, range);

    ppr.IntervalQuery(area, range, &ppr_hits);
    std::sort(ppr_hits.begin(), ppr_hits.end());
    EXPECT_EQ(ppr_hits, expected)
        << "ppr seed=" << GetParam() << " q=" << q;

    hr.IntervalQuery(area, range, &hr_hits);
    std::sort(hr_hits.begin(), hr_hits.end());
    EXPECT_EQ(hr_hits, expected) << "hr seed=" << GetParam() << " q=" << q;

    // Snapshot at the interval start must match a duration-1 interval.
    ppr.SnapshotQuery(area, range.start, &ppr_hits);
    std::sort(ppr_hits.begin(), ppr_hits.end());
    EXPECT_EQ(ppr_hits,
              ScanInterval(records, area,
                           TimeInterval(range.start, range.start + 1)))
        << "ppr snapshot seed=" << GetParam() << " q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferentialTest,
                         ::testing::Range<uint64_t>(1000, 1012));

}  // namespace
}  // namespace stindex
