#include "util/http_exposition.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/slow_query_log.h"
#include "gtest/gtest.h"
#include "live/live_tier.h"
#include "storage/fault_backend.h"
#include "storage/page_backend.h"
#include "util/metrics.h"

namespace stindex {
namespace {

// Minimal blocking HTTP GET against 127.0.0.1:port. Returns the whole
// response (status line, headers, body) or "" on connect failure.
std::string HttpGet(uint16_t port, const std::string& target) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return "";
  }
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = send(fd, request.data() + sent, request.size() - sent,
                           MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;  // Connection: close — EOF terminates the response
    response.append(buffer, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

int StatusCodeOf(const std::string& response) {
  // "HTTP/1.1 200 OK\r\n..."
  if (response.size() < 12) return -1;
  return std::stoi(response.substr(9, 3));
}

std::string BodyOf(const std::string& response) {
  const size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

// A recursive-descent JSON well-formedness check, enough to catch
// unbalanced braces, bad commas and unescaped strings in /statusz.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal(const char* word) {
    const size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

Rect2D UnitRect(double lo, double hi) { return Rect2D{lo, lo, hi, hi}; }

TEST(HttpExpositionTest, ServesMetricsScrape) {
  MetricRegistry& registry = MetricRegistry::Global();
  registry.ResetForTest();
  registry.GetCounter("exposition.test.counter")->Add(17);
  registry.GetGauge("exposition.test.gauge")->Set(-4);
  registry.GetHistogram("exposition.test.hist")->Record(2.0);

  HttpExpositionOptions options;
  options.epoch_seconds = 3600.0;  // the test drives the window manually
  HttpExpositionServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  const std::string response = HttpGet(server.port(), "/metrics");
  EXPECT_EQ(StatusCodeOf(response), 200);
  const std::string body = BodyOf(response);
  EXPECT_NE(body.find("# TYPE stindex_exposition_test_counter counter\n"
                      "stindex_exposition_test_counter 17\n"),
            std::string::npos);
  EXPECT_NE(body.find("stindex_exposition_test_gauge -4\n"),
            std::string::npos);
  EXPECT_NE(body.find("stindex_exposition_test_hist_count 1\n"),
            std::string::npos);
  // The window span gauge is always present, even before two epochs.
  EXPECT_NE(body.find("stindex_metrics_window_seconds"), std::string::npos);
  EXPECT_EQ(server.scrapes(), 1u);
  server.Stop();
  registry.ResetForTest();
}

TEST(HttpExpositionTest, WindowedSeriesAppearAfterAdvance) {
  MetricRegistry& registry = MetricRegistry::Global();
  registry.ResetForTest();
  HttpExpositionOptions options;
  options.epoch_seconds = 3600.0;
  HttpExpositionServer server(options);
  ASSERT_TRUE(server.Start().ok());

  registry.GetCounter("exposition.window.counter")->Add(40);
  registry.GetHistogram("exposition.window.hist")->Record(1.0);
  registry.GetHistogram("exposition.window.hist")->Record(4.0);
  server.window()->Advance();  // second boundary (Start seeded the first)

  const std::string body = BodyOf(HttpGet(server.port(), "/metrics"));
  EXPECT_NE(body.find("stindex_exposition_window_counter_rate"),
            std::string::npos);
  EXPECT_NE(
      body.find("stindex_exposition_window_hist_window{quantile=\"0.95\"}"),
      std::string::npos);
  EXPECT_NE(body.find("stindex_exposition_window_hist_window_count 2\n"),
            std::string::npos);
  server.Stop();
  registry.ResetForTest();
}

TEST(HttpExpositionTest, HealthzReflectsHealthCheck) {
  std::atomic<bool> healthy{true};
  HttpExpositionServer server;
  server.set_health_check([&healthy](std::string* detail) {
    if (!healthy.load()) {
      *detail = "synthetic failure";
      return false;
    }
    return true;
  });
  ASSERT_TRUE(server.Start().ok());

  std::string response = HttpGet(server.port(), "/healthz");
  EXPECT_EQ(StatusCodeOf(response), 200);
  EXPECT_EQ(BodyOf(response), "ok\n");

  healthy.store(false);
  response = HttpGet(server.port(), "/healthz");
  EXPECT_EQ(StatusCodeOf(response), 503);
  EXPECT_EQ(BodyOf(response), "unhealthy: synthetic failure\n");
  server.Stop();
}

// The production wiring: /healthz flips to 503 once a WAL write fault
// latches the live tier.
TEST(HttpExpositionTest, HealthzGoesUnhealthyWhenLiveTierLatches) {
  FaultInjectingBackend::Faults faults;
  faults.crash_at_write = 1;  // first WAL page write latches everything
  auto fault = std::make_unique<FaultInjectingBackend>(
      std::make_unique<MemoryPageBackend>(), faults);
  LiveTierOptions options;
  options.index.capacity = 0;
  Result<std::unique_ptr<LiveTier>> opened =
      LiveTier::Open(options, std::move(fault));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  LiveTier* tier = opened.value().get();

  HttpExpositionServer server;
  server.set_health_check([tier](std::string* detail) {
    if (tier->latched()) {
      *detail = "live tier latched on a WAL I/O failure";
      return false;
    }
    return true;
  });
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(StatusCodeOf(HttpGet(server.port(), "/healthz")), 200);

  // Fill the open WAL page until the flush hits the injected fault.
  Status status = Status::OK();
  for (Time t = 0; t < 1000 && status.ok(); ++t) {
    status = tier->Observe(1, t, UnitRect(0.1, 0.2));
  }
  ASSERT_FALSE(status.ok()) << "write fault never fired";
  ASSERT_TRUE(tier->latched());

  const std::string response = HttpGet(server.port(), "/healthz");
  EXPECT_EQ(StatusCodeOf(response), 503);
  EXPECT_NE(BodyOf(response).find("latched"), std::string::npos);
  server.Stop();
}

TEST(HttpExpositionTest, StatuszIsValidJson) {
  LiveTierOptions tier_options;
  Result<std::unique_ptr<LiveTier>> opened =
      LiveTier::Open(tier_options, std::make_unique<MemoryPageBackend>());
  ASSERT_TRUE(opened.ok());
  LiveTier* tier = opened.value().get();
  ASSERT_TRUE(tier->Observe(3, 0, UnitRect(0.2, 0.3)).ok());
  ASSERT_TRUE(tier->Commit().ok());

  SlowQueryLog slow_log(0.0);  // threshold 0: capture everything
  std::vector<ObjectId> results;
  QueryProfile profile;
  tier->SnapshotQuery(UnitRect(0.0, 1.0), 0, &results, &profile);
  slow_log.MaybeRecord(1.25, true, UnitRect(0.0, 1.0), TimeInterval(0, 1),
                       results.size(), profile);

  HttpExpositionServer server;
  server.set_status_source([tier, &slow_log](JsonWriter* json) {
    const LiveTier::Telemetry t = tier->GetTelemetry();
    json->Key("wal_records").Uint(t.wal_records);
    json->Key("pool_shards").Uint(t.pool_shards.size());
    json->Key("slow_queries");
    slow_log.RenderStatusz(json);
  });
  ASSERT_TRUE(server.Start().ok());

  const std::string response = HttpGet(server.port(), "/statusz");
  EXPECT_EQ(StatusCodeOf(response), 200);
  const std::string body = BodyOf(response);
  EXPECT_TRUE(JsonValidator(body).Valid()) << body;
  EXPECT_NE(body.find("\"uptime_s\""), std::string::npos);
  EXPECT_NE(body.find("\"trace_dropped_events\""), std::string::npos);
  EXPECT_NE(body.find("\"wal_records\""), std::string::npos);
  EXPECT_NE(body.find("\"slow_queries\""), std::string::npos);
  EXPECT_NE(body.find("\"latency_ms\": 1.25"), std::string::npos);
  server.Stop();
}

TEST(HttpExpositionTest, UnknownTargetIs404) {
  HttpExpositionServer server;
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(StatusCodeOf(HttpGet(server.port(), "/nope")), 404);
  // Query strings are stripped before routing.
  EXPECT_EQ(StatusCodeOf(HttpGet(server.port(), "/healthz?verbose=1")), 200);
  server.Stop();
}

// Scrapes race registry writers and window advances; run under TSan this
// is the data-race check for the whole telemetry read path.
TEST(HttpExpositionTest, ConcurrentScrapesWhileRecording) {
  MetricRegistry& registry = MetricRegistry::Global();
  registry.ResetForTest();
  HttpExpositionOptions options;
  options.epoch_seconds = 0.001;  // advance the window as fast as possible
  HttpExpositionServer server(options);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Counter* counter = registry.GetCounter("exposition.race.counter");
    HistogramMetric* histogram =
        registry.GetHistogram("exposition.race.hist");
    uint64_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      counter->Increment();
      histogram->Record(static_cast<double>(i % 7 + 1));
      ++i;
    }
  });
  std::vector<std::thread> scrapers;
  for (int s = 0; s < 4; ++s) {
    scrapers.emplace_back([&server] {
      for (int i = 0; i < 10; ++i) {
        const std::string response = HttpGet(server.port(), "/metrics");
        EXPECT_EQ(StatusCodeOf(response), 200);
      }
    });
  }
  for (std::thread& scraper : scrapers) scraper.join();
  stop.store(true, std::memory_order_release);
  writer.join();
  EXPECT_GE(server.scrapes(), 40u);
  server.Stop();
  registry.ResetForTest();
}

// --- SlowQueryLog unit cases --------------------------------------------

QueryProfile MakeProfile(uint64_t nodes) {
  QueryProfile profile;
  for (uint64_t i = 0; i < nodes; ++i) profile.CountNode(0);
  profile.leaf_entries_scanned = nodes * 10;
  return profile;
}

TEST(SlowQueryLogTest, ThresholdGatesCapture) {
  SlowQueryLog log(5.0, 8);
  EXPECT_FALSE(log.MaybeRecord(4.9, true, UnitRect(0, 1), TimeInterval(0, 1),
                               0, MakeProfile(1)));
  EXPECT_TRUE(log.MaybeRecord(5.0, true, UnitRect(0, 1), TimeInterval(0, 1),
                              2, MakeProfile(3)));
  EXPECT_EQ(log.captured(), 1u);
  const std::vector<SlowQueryEntry> entries = log.Entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].sequence, 1u);
  EXPECT_DOUBLE_EQ(entries[0].latency_ms, 5.0);
  EXPECT_EQ(entries[0].results, 2u);
  EXPECT_EQ(entries[0].profile.nodes_visited, 3u);
}

TEST(SlowQueryLogTest, RingDropsOldest) {
  SlowQueryLog log(0.0, 3);
  for (int i = 1; i <= 5; ++i) {
    log.MaybeRecord(static_cast<double>(i), false, UnitRect(0, 1),
                    TimeInterval(0, 10), 0, MakeProfile(1));
  }
  EXPECT_EQ(log.captured(), 5u);
  EXPECT_EQ(log.evicted(), 2u);
  const std::vector<SlowQueryEntry> entries = log.Entries();
  ASSERT_EQ(entries.size(), 3u);
  // Oldest-first: sequences 3, 4, 5 survive.
  EXPECT_EQ(entries.front().sequence, 3u);
  EXPECT_EQ(entries.back().sequence, 5u);
}

TEST(SlowQueryLogTest, JsonlSinkWritesOneValidLinePerCapture) {
  const std::string path = ::testing::TempDir() + "/slow_queries.jsonl";
  {
    SlowQueryLog log(0.0, 4);
    ASSERT_TRUE(log.OpenJsonlSink(path));
    log.MaybeRecord(7.5, true, UnitRect(0.25, 0.75), TimeInterval(42, 43), 3,
                    MakeProfile(2));
    log.MaybeRecord(9.0, false, UnitRect(0.0, 1.0), TimeInterval(0, 100), 0,
                    MakeProfile(1));
  }
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  std::vector<std::string> lines;
  char buffer[4096];
  while (std::fgets(buffer, sizeof(buffer), file) != nullptr) {
    lines.emplace_back(buffer);
  }
  std::fclose(file);
  ASSERT_EQ(lines.size(), 2u);
  for (std::string& line : lines) {
    ASSERT_FALSE(line.empty());
    ASSERT_EQ(line.back(), '\n');
    line.pop_back();
    EXPECT_TRUE(JsonValidator(line).Valid()) << line;
  }
  EXPECT_NE(lines[0].find("\"seq\":1"), std::string::npos);
  EXPECT_NE(lines[0].find("\"kind\":\"snapshot\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"results\":3"), std::string::npos);
  EXPECT_NE(lines[1].find("\"kind\":\"interval\""), std::string::npos);
}

TEST(SlowQueryLogTest, RenderStatuszIsValidJson) {
  SlowQueryLog log(1.0, 4);
  log.MaybeRecord(2.0, true, UnitRect(0.1, 0.9), TimeInterval(5, 6), 1,
                  MakeProfile(4));
  JsonWriter json;
  log.RenderStatusz(&json);
  EXPECT_TRUE(JsonValidator(json.str()).Valid()) << json.str();
  EXPECT_NE(json.str().find("\"threshold_ms\""), std::string::npos);
  EXPECT_NE(json.str().find("\"nodes_visited\": 4"), std::string::npos);
}

}  // namespace
}  // namespace stindex
