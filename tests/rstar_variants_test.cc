#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "rstar/rstar_tree.h"
#include "util/random.h"

namespace stindex {
namespace {

Box3D RandomBox(Rng& rng, double max_extent = 0.05) {
  const double x = rng.UniformDouble(0, 1);
  const double y = rng.UniformDouble(0, 1);
  const double t = rng.UniformDouble(0, 1);
  return Box3D(x, y, t, x + rng.UniformDouble(0, max_extent),
               y + rng.UniformDouble(0, max_extent),
               t + rng.UniformDouble(0, max_extent));
}

std::vector<DataId> BruteForceSearch(const std::vector<Box3D>& boxes,
                                     const Box3D& query) {
  std::vector<DataId> hits;
  for (size_t i = 0; i < boxes.size(); ++i) {
    if (boxes[i].Intersects(query)) hits.push_back(i);
  }
  return hits;
}

struct VariantParam {
  SplitStrategy split;
  bool forced_reinsert;
};

class RStarVariantTest : public ::testing::TestWithParam<VariantParam> {};

TEST_P(RStarVariantTest, EquivalentToLinearScan) {
  RStarConfig config;
  config.split = GetParam().split;
  config.forced_reinsert = GetParam().forced_reinsert;
  RStarTree tree(config);
  Rng rng(55);
  std::vector<Box3D> boxes;
  for (DataId i = 0; i < 900; ++i) {
    boxes.push_back(RandomBox(rng));
    tree.Insert(boxes.back(), i);
  }
  tree.CheckInvariants();
  for (int q = 0; q < 40; ++q) {
    const Box3D query = RandomBox(rng, 0.2);
    std::vector<DataId> results;
    tree.Search(query, &results);
    std::sort(results.begin(), results.end());
    EXPECT_EQ(results, BruteForceSearch(boxes, query));
  }
}

TEST_P(RStarVariantTest, SmallCapacityStress) {
  RStarConfig config;
  config.max_entries = 5;
  config.min_entries = 2;
  config.reinsert_count = 1;
  config.split = GetParam().split;
  config.forced_reinsert = GetParam().forced_reinsert;
  RStarTree tree(config);
  Rng rng(56);
  std::vector<Box3D> boxes;
  for (DataId i = 0; i < 300; ++i) {
    boxes.push_back(RandomBox(rng, 0.02));
    tree.Insert(boxes.back(), i);
  }
  tree.CheckInvariants();
  for (int q = 0; q < 25; ++q) {
    const Box3D query = RandomBox(rng, 0.3);
    std::vector<DataId> results;
    tree.Search(query, &results);
    std::sort(results.begin(), results.end());
    EXPECT_EQ(results, BruteForceSearch(boxes, query));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, RStarVariantTest,
    ::testing::Values(VariantParam{SplitStrategy::kRStar, true},
                      VariantParam{SplitStrategy::kRStar, false},
                      VariantParam{SplitStrategy::kQuadratic, true},
                      VariantParam{SplitStrategy::kQuadratic, false},
                      VariantParam{SplitStrategy::kLinear, false},
                      VariantParam{SplitStrategy::kLinear, true}));

TEST(RStarVariantComparison, RStarQueriesNoWorseThanLinearSplit) {
  // On clustered data the R* heuristics should not lose to the crudest
  // variant by more than noise; typically they win clearly.
  Rng rng(57);
  std::vector<Box3D> boxes;
  for (int cluster = 0; cluster < 8; ++cluster) {
    const double cx = rng.UniformDouble(0.1, 0.9);
    const double cy = rng.UniformDouble(0.1, 0.9);
    for (int i = 0; i < 250; ++i) {
      const double x = cx + rng.UniformDouble(-0.03, 0.03);
      const double y = cy + rng.UniformDouble(-0.03, 0.03);
      const double t = rng.UniformDouble(0, 1);
      boxes.emplace_back(x, y, t, x + 0.01, y + 0.01, t + 0.02);
    }
  }
  RStarConfig rstar_config;
  RStarConfig linear_config;
  linear_config.split = SplitStrategy::kLinear;
  linear_config.forced_reinsert = false;
  RStarTree rstar(rstar_config);
  RStarTree linear(linear_config);
  for (size_t i = 0; i < boxes.size(); ++i) {
    rstar.Insert(boxes[i], static_cast<DataId>(i));
    linear.Insert(boxes[i], static_cast<DataId>(i));
  }
  auto total_io = [&boxes](RStarTree& tree) {
    Rng qrng(58);
    uint64_t misses = 0;
    std::vector<DataId> results;
    for (int q = 0; q < 60; ++q) {
      tree.ResetQueryState();
      tree.Search(RandomBox(qrng, 0.05), &results);
      misses += tree.stats().misses;
    }
    return misses;
  };
  // At this small scale the trees are shallow, so only guard against a
  // gross regression; bench_ablation_rstar quantifies the real gap.
  EXPECT_LE(total_io(rstar), total_io(linear) * 3 / 2);
}

}  // namespace
}  // namespace stindex
