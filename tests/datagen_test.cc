#include <gtest/gtest.h>

#include <set>

#include "datagen/clustered_dataset.h"
#include "datagen/query_gen.h"
#include "datagen/railway.h"
#include "datagen/random_dataset.h"
#include "util/random.h"

namespace stindex {
namespace {

TEST(RandomDatasetTest, RespectsCardinalityAndIds) {
  RandomDatasetConfig config;
  config.num_objects = 500;
  const std::vector<Trajectory> objects = GenerateRandomDataset(config);
  ASSERT_EQ(objects.size(), 500u);
  for (size_t i = 0; i < objects.size(); ++i) {
    EXPECT_EQ(objects[i].id(), i);
    EXPECT_TRUE(objects[i].Validate().ok());
  }
}

TEST(RandomDatasetTest, LifetimesWithinConfiguredBounds) {
  RandomDatasetConfig config;
  config.num_objects = 400;
  config.min_lifetime = 5;
  config.max_lifetime = 60;
  const std::vector<Trajectory> objects = GenerateRandomDataset(config);
  for (const Trajectory& object : objects) {
    const TimeInterval life = object.Lifetime();
    EXPECT_GE(life.Duration(), 5);
    EXPECT_LE(life.Duration(), 60);
    EXPECT_GE(life.start, 0);
    EXPECT_LE(life.end, config.time_domain);
  }
}

TEST(RandomDatasetTest, TupleCountsWithinBounds) {
  RandomDatasetConfig config;
  config.num_objects = 300;
  const std::vector<Trajectory> objects = GenerateRandomDataset(config);
  for (const Trajectory& object : objects) {
    EXPECT_GE(object.tuples().size(), 1u);
    EXPECT_LE(object.tuples().size(), 10u);
    EXPECT_LE(static_cast<int64_t>(object.tuples().size()),
              object.NumInstants());
  }
}

TEST(RandomDatasetTest, CentersNormalizedToUnitSquare) {
  RandomDatasetConfig config;
  config.num_objects = 300;
  const std::vector<Trajectory> objects = GenerateRandomDataset(config);
  for (const Trajectory& object : objects) {
    const TimeInterval life = object.Lifetime();
    for (Time t = life.start; t < life.end; ++t) {
      const Point2D center = object.RectAt(t).Center();
      EXPECT_GE(center.x, -1e-9);
      EXPECT_LE(center.x, 1.0 + 1e-9);
      EXPECT_GE(center.y, -1e-9);
      EXPECT_LE(center.y, 1.0 + 1e-9);
    }
  }
}

TEST(RandomDatasetTest, ExtentsWithinConfiguredRange) {
  RandomDatasetConfig config;
  config.num_objects = 200;
  const std::vector<Trajectory> objects = GenerateRandomDataset(config);
  for (const Trajectory& object : objects) {
    const Rect2D rect = object.RectAt(object.Lifetime().start);
    EXPECT_GE(rect.Width(), config.min_extent - 1e-9);
    EXPECT_LE(rect.Width(), config.max_extent + 1e-9);
    EXPECT_GE(rect.Height(), config.min_extent - 1e-9);
    EXPECT_LE(rect.Height(), config.max_extent + 1e-9);
  }
}

TEST(RandomDatasetTest, DeterministicForSeed) {
  RandomDatasetConfig config;
  config.num_objects = 50;
  const std::vector<Trajectory> a = GenerateRandomDataset(config);
  const std::vector<Trajectory> b = GenerateRandomDataset(config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].Lifetime(), b[i].Lifetime());
    EXPECT_EQ(a[i].RectAt(a[i].Lifetime().start),
              b[i].RectAt(b[i].Lifetime().start));
  }
  config.seed = 43;
  const std::vector<Trajectory> c = GenerateRandomDataset(config);
  int differing = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].Lifetime() == c[i].Lifetime())) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(RandomDatasetTest, ChangingExtentsStayValid) {
  RandomDatasetConfig config;
  config.num_objects = 100;
  config.changing_extents = true;
  const std::vector<Trajectory> objects = GenerateRandomDataset(config);
  for (const Trajectory& object : objects) {
    for (const Rect2D& rect : object.Sample()) {
      EXPECT_TRUE(rect.IsValid());
    }
  }
}

TEST(DatasetStatsTest, MatchesHandComputation) {
  RandomDatasetConfig config;
  config.num_objects = 250;
  const std::vector<Trajectory> objects = GenerateRandomDataset(config);
  const DatasetStats stats = ComputeDatasetStats(objects, config.time_domain);
  EXPECT_EQ(stats.total_objects, 250u);
  int64_t instants = 0;
  size_t segments = 0;
  for (const Trajectory& object : objects) {
    instants += object.NumInstants();
    segments += object.tuples().size();
  }
  EXPECT_NEAR(stats.avg_objects_per_instant,
              static_cast<double>(instants) / 1000.0, 1e-9);
  EXPECT_EQ(stats.total_segments, segments);
  EXPECT_NEAR(stats.avg_lifetime,
              static_cast<double>(instants) / 250.0, 1e-9);
  // Table I shape: avg lifetime ~50 for lifetimes U[1, 100].
  EXPECT_GT(stats.avg_lifetime, 35.0);
  EXPECT_LT(stats.avg_lifetime, 65.0);
}

TEST(RailwayMapTest, PaperCardinalities) {
  const RailwayMap map = BuildRailwayMap();
  EXPECT_EQ(map.cities.size(), 22u);
  EXPECT_EQ(map.tracks.size(), 51u);
  // Valid endpoints, no self loops.
  std::set<std::pair<int, int>> seen;
  for (const Track& track : map.tracks) {
    EXPECT_GE(track.from, 0);
    EXPECT_LT(track.from, 22);
    EXPECT_GE(track.to, 0);
    EXPECT_LT(track.to, 22);
    EXPECT_NE(track.from, track.to);
    auto key = std::minmax(track.from, track.to);
    EXPECT_TRUE(seen.emplace(key.first, key.second).second)
        << "duplicate track " << track.from << "-" << track.to;
  }
  // Every city is connected.
  for (int c = 0; c < 22; ++c) {
    EXPECT_FALSE(map.Neighbors(c).empty()) << map.cities[c].name;
  }
}

TEST(RailwayMapTest, CitiesInsideUnitSquare) {
  const RailwayMap map = BuildRailwayMap();
  for (const City& city : map.cities) {
    EXPECT_GE(city.position.x, 0.0);
    EXPECT_LE(city.position.x, 1.0);
    EXPECT_GE(city.position.y, 0.0);
    EXPECT_LE(city.position.y, 1.0);
  }
}

TEST(RailwayDatasetTest, TrainsHonorTravelBudget) {
  RailwayDatasetConfig config;
  config.num_trains = 400;
  const std::vector<Trajectory> trains = GenerateRailwayDataset(config);
  ASSERT_EQ(trains.size(), 400u);
  const Time max_instants = static_cast<Time>(
      config.max_travel_hours / config.hours_per_instant) + 1;
  for (const Trajectory& train : trains) {
    EXPECT_TRUE(train.Validate().ok());
    EXPECT_LE(train.NumInstants(), max_instants);
    EXPECT_GE(train.Lifetime().start, 0);
    EXPECT_LE(train.Lifetime().end, config.time_domain);
  }
}

TEST(RailwayDatasetTest, ShortLifetimesMatchTableOne) {
  RailwayDatasetConfig config;
  config.num_trains = 1000;
  const std::vector<Trajectory> trains = GenerateRailwayDataset(config);
  const DatasetStats stats = ComputeDatasetStats(trains, config.time_domain);
  // Table I: average train lifetime ~18 instants — an order of magnitude
  // below the random datasets' 50.
  EXPECT_GT(stats.avg_lifetime, 5.0);
  EXPECT_LT(stats.avg_lifetime, 30.0);
}

TEST(RailwayDatasetTest, TrainsMoveAlongTracks) {
  RailwayDatasetConfig config;
  config.num_trains = 50;
  const RailwayMap map = BuildRailwayMap();
  const std::vector<Trajectory> trains = GenerateRailwayDataset(config);
  for (const Trajectory& train : trains) {
    // Tuple endpoints must be at city positions.
    for (const MovementTuple& tuple : train.tuples()) {
      const double x0 = tuple.center_x.Evaluate(0.0);
      const double y0 = tuple.center_y.Evaluate(0.0);
      bool at_city = false;
      for (const City& city : map.cities) {
        if (std::abs(city.position.x - x0) < 1e-9 &&
            std::abs(city.position.y - y0) < 1e-9) {
          at_city = true;
          break;
        }
      }
      EXPECT_TRUE(at_city) << "tuple does not start at a city";
    }
  }
}

TEST(ClusteredDatasetTest, ObjectsStayNearTheirCluster) {
  ClusteredDatasetConfig config;
  config.num_objects = 300;
  config.num_clusters = 4;
  config.cluster_stddev = 0.03;
  const std::vector<Trajectory> objects = GenerateClusteredDataset(config);
  ASSERT_EQ(objects.size(), 300u);
  size_t small_span = 0;
  for (const Trajectory& object : objects) {
    EXPECT_TRUE(object.Validate().ok());
    const Rect2D mbr = object.FullBox().rect;
    // All positions stay inside the unit square...
    EXPECT_GE(mbr.xlo, -1e-9);
    EXPECT_LE(mbr.xhi, 1.0 + 1e-9);
    // ... and most objects roam only a small patch around their cluster.
    if (mbr.Width() < 0.3 && mbr.Height() < 0.3) ++small_span;
  }
  EXPECT_GT(small_span, objects.size() * 9 / 10);
}

TEST(ClusteredDatasetTest, SkewIsVisibleInSpatialDensity) {
  ClusteredDatasetConfig config;
  config.num_objects = 1000;
  config.num_clusters = 3;
  const std::vector<Trajectory> objects = GenerateClusteredDataset(config);
  // Count objects starting in each cell of a 4x4 grid; skewed data puts
  // most mass in few cells, unlike the uniform generator.
  int cells[16] = {};
  for (const Trajectory& object : objects) {
    const Point2D p = object.RectAt(object.Lifetime().start).Center();
    const int cx = std::min(3, static_cast<int>(p.x * 4));
    const int cy = std::min(3, static_cast<int>(p.y * 4));
    ++cells[cy * 4 + cx];
  }
  int top3 = 0;
  std::sort(std::begin(cells), std::end(cells), std::greater<int>());
  for (int i = 0; i < 3; ++i) top3 += cells[i];
  EXPECT_GT(top3, 500);  // >half the mass in 3 of 16 cells
}

TEST(RngTest, GaussianMoments) {
  Rng rng(31);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double value = rng.Gaussian(2.0, 0.5);
    sum += value;
    sum2 += value * value;
  }
  const double mean = sum / n;
  const double variance = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.02);
  EXPECT_NEAR(variance, 0.25, 0.02);
}

TEST(QueryGenTest, SnapshotSetsHaveUnitDuration) {
  for (const QuerySetConfig& config :
       {TinySnapshotSet(), SmallSnapshotSet(), MixedSnapshotSet(),
        LargeSnapshotSet()}) {
    const std::vector<STQuery> queries = GenerateQuerySet(config);
    EXPECT_EQ(queries.size(), 1000u) << config.name;
    for (const STQuery& query : queries) {
      EXPECT_TRUE(query.IsSnapshot()) << config.name;
      EXPECT_GE(query.range.start, 0);
      EXPECT_LT(query.range.end, 1001);
    }
  }
}

TEST(QueryGenTest, RangeSetsHaveConfiguredDurations) {
  const std::vector<STQuery> small = GenerateQuerySet(SmallRangeSet());
  for (const STQuery& query : small) {
    EXPECT_GE(query.range.Duration(), 1);
    EXPECT_LE(query.range.Duration(), 10);
  }
  const std::vector<STQuery> medium = GenerateQuerySet(MediumRangeSet());
  for (const STQuery& query : medium) {
    EXPECT_GE(query.range.Duration(), 10);
    EXPECT_LE(query.range.Duration(), 50);
  }
}

TEST(QueryGenTest, ExtentsWithinConfiguredFractions) {
  const std::vector<STQuery> queries = GenerateQuerySet(SmallSnapshotSet());
  for (const STQuery& query : queries) {
    EXPECT_GE(query.area.Width(), 0.001 - 1e-12);
    EXPECT_LE(query.area.Width(), 0.01 + 1e-12);
    EXPECT_GE(query.area.Height(), 0.001 - 1e-12);
    EXPECT_LE(query.area.Height(), 0.01 + 1e-12);
    // Window inside the unit square.
    EXPECT_GE(query.area.xlo, -1e-12);
    EXPECT_LE(query.area.xhi, 1.0 + 1e-12);
  }
}

TEST(QueryGenTest, DistinctSetsUseDistinctSeeds) {
  const std::vector<STQuery> a = GenerateQuerySet(SmallSnapshotSet());
  const std::vector<STQuery> b = GenerateQuerySet(MixedSnapshotSet());
  int identical = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].range.start == b[i].range.start) ++identical;
  }
  EXPECT_LT(identical, 50);
}

}  // namespace
}  // namespace stindex
