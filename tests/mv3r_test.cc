#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/split_pipeline.h"
#include "datagen/random_dataset.h"
#include "hybrid/mv3r_index.h"
#include "util/random.h"

namespace stindex {
namespace {

std::set<uint64_t> ScanQuery(const std::vector<SegmentRecord>& records,
                             const STQuery& query) {
  std::set<uint64_t> hits;
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].box.interval.Intersects(query.range) &&
        records[i].box.rect.Intersects(query.area)) {
      hits.insert(i);
    }
  }
  return hits;
}

std::vector<SegmentRecord> MakeRecords(size_t n) {
  RandomDatasetConfig config;
  config.num_objects = n;
  config.seed = 91;
  const std::vector<Trajectory> objects = GenerateRandomDataset(config);
  const std::vector<VolumeCurve> curves =
      ComputeVolumeCurves(objects, 64, SplitMethod::kMerge);
  const Distribution dist =
      DistributeLAGreedy(curves, static_cast<int64_t>(n));
  return BuildSegments(objects, dist.splits, SplitMethod::kMerge);
}

TEST(Mv3rTest, RoutingByDuration) {
  const std::vector<SegmentRecord> records = MakeRecords(200);
  Mv3rConfig config;
  config.long_query_threshold = 16;
  Mv3rIndex index(records, 1000, config);

  STQuery snapshot;
  snapshot.area = Rect2D(0.2, 0.2, 0.4, 0.4);
  snapshot.range = TimeInterval(100, 101);
  EXPECT_FALSE(index.RoutesToAuxiliary(snapshot));

  STQuery medium;
  medium.area = snapshot.area;
  medium.range = TimeInterval(100, 140);
  EXPECT_TRUE(index.RoutesToAuxiliary(medium));

  STQuery boundary;
  boundary.area = snapshot.area;
  boundary.range = TimeInterval(100, 116);  // duration exactly 16
  EXPECT_TRUE(index.RoutesToAuxiliary(boundary));
}

TEST(Mv3rTest, BothPathsMatchScan) {
  const std::vector<SegmentRecord> records = MakeRecords(500);
  Mv3rIndex index(records, 1000);

  Rng rng(92);
  std::vector<uint64_t> results;
  for (int q = 0; q < 60; ++q) {
    STQuery query;
    const double x = rng.UniformDouble(0, 0.8);
    const double y = rng.UniformDouble(0, 0.8);
    query.area = Rect2D(x, y, x + rng.UniformDouble(0.01, 0.15),
                        y + rng.UniformDouble(0.01, 0.15));
    // Mix of short and long durations so both members get exercised.
    const Time duration = q % 2 == 0 ? rng.UniformInt(1, 10)
                                     : rng.UniformInt(30, 120);
    const Time start = rng.UniformInt(0, 999 - duration);
    query.range = TimeInterval(start, start + duration);

    index.Query(query, &results);
    const std::set<uint64_t> got(results.begin(), results.end());
    EXPECT_EQ(got, ScanQuery(records, query)) << "query " << q;
    EXPECT_EQ(got.size(), results.size()) << "duplicates in query " << q;
  }
}

TEST(Mv3rTest, AuxiliaryHelpsLongIntervals) {
  // For long interval queries the hybrid must not be slower than the pure
  // PPR-tree answering the same query.
  const std::vector<SegmentRecord> records = MakeRecords(2000);
  Mv3rIndex index(records, 1000);

  Rng rng(93);
  uint64_t hybrid_io = 0;
  uint64_t ppr_io = 0;
  std::vector<uint64_t> results;
  std::vector<PprDataId> ppr_results;
  for (int q = 0; q < 40; ++q) {
    STQuery query;
    const double x = rng.UniformDouble(0, 0.9);
    const double y = rng.UniformDouble(0, 0.9);
    query.area = Rect2D(x, y, x + 0.01, y + 0.01);
    const Time start = rng.UniformInt(0, 799);
    query.range = TimeInterval(start, start + 200);

    index.Query(query, &results);
    hybrid_io += index.LastQueryMisses();

    index.ppr().ResetQueryState();
    index.ppr().IntervalQuery(query.area, query.range, &ppr_results);
    ppr_io += index.ppr().stats().misses;
  }
  EXPECT_LT(hybrid_io, ppr_io);
}

TEST(Mv3rTest, UnpackedAuxiliaryAlsoCorrect) {
  const std::vector<SegmentRecord> records = MakeRecords(300);
  Mv3rConfig config;
  config.pack_auxiliary = false;
  Mv3rIndex index(records, 1000, config);
  STQuery query;
  query.area = Rect2D(0.0, 0.0, 1.0, 1.0);
  query.range = TimeInterval(0, 1000);
  std::vector<uint64_t> results;
  index.Query(query, &results);
  EXPECT_EQ(results.size(), records.size());
}

}  // namespace
}  // namespace stindex
